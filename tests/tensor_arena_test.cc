// InferenceArena contract tests (DESIGN.md, "Serving layer"): buffer
// recycling by byte size, scope nesting/suspension, stale-buffer safety of
// the factory functions, lifetime of buffers that outlive the arena handle,
// and thread safety of the shared pool.

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "models/lstm_forecaster.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace emaf::tensor {
namespace {

TEST(InferenceArenaTest, FirstAcquireMissesThenRecycledBufferHits) {
  InferenceArena arena;
  ArenaScope scope(&arena);

  const double* first_data = nullptr;
  {
    Tensor t = MakeUninitialized(Shape{2, 3});
    first_data = t.data();
    InferenceArena::Stats stats = arena.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.outstanding, 1u);
    EXPECT_EQ(stats.pooled, 0u);
  }
  // The tensor died, so its buffer is back in the pool.
  {
    InferenceArena::Stats stats = arena.stats();
    EXPECT_EQ(stats.outstanding, 0u);
    EXPECT_EQ(stats.pooled, 1u);
  }
  // Same numel (even a different shape) reuses the exact buffer.
  Tensor again = MakeUninitialized(Shape{6});
  EXPECT_EQ(again.data(), first_data);
  InferenceArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(InferenceArenaTest, DistinctNumelsUseDistinctFreeLists) {
  InferenceArena arena;
  ArenaScope scope(&arena);
  { Tensor t = MakeUninitialized(Shape{4}); }
  Tensor bigger = MakeUninitialized(Shape{8});
  InferenceArena::Stats stats = arena.stats();
  // The pooled 4-element buffer must not satisfy an 8-element request.
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.pooled, 1u);
}

TEST(InferenceArenaTest, ZerosClearsRecycledBuffer) {
  InferenceArena arena;
  ArenaScope scope(&arena);
  { Tensor garbage = Tensor::Full(Shape{5}, 13.25); }
  // Zeros must not expose the recycled buffer's stale 13.25s.
  Tensor z = Tensor::Zeros(Shape{5});
  for (double v : z.ToVector()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(arena.stats().hits, 1u);
}

TEST(InferenceArenaTest, CloneDrawsFromArena) {
  Tensor source = Tensor::Full(Shape{3}, 2.5);  // heap, outside any scope
  InferenceArena arena;
  ArenaScope scope(&arena);
  const double* recycled = nullptr;
  {
    Tensor first = source.Clone();
    recycled = first.data();
  }
  Tensor second = source.Clone();
  EXPECT_EQ(second.data(), recycled);
  EXPECT_EQ(second.ToVector(), source.ToVector());
  EXPECT_EQ(arena.stats().hits, 1u);
}

TEST(InferenceArenaTest, ScopesNestAndNullptrSuspends) {
  EXPECT_EQ(CurrentArena(), nullptr);
  InferenceArena outer_arena;
  InferenceArena inner_arena;
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(CurrentArena(), &outer_arena);
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(CurrentArena(), &inner_arena);
      {
        ArenaScope suspend(nullptr);
        EXPECT_EQ(CurrentArena(), nullptr);
        // Allocations under a suspended scope are plain heap: no arena
        // sees a miss.
        Tensor t = MakeUninitialized(Shape{2});
      }
      EXPECT_EQ(CurrentArena(), &inner_arena);
    }
    EXPECT_EQ(CurrentArena(), &outer_arena);
  }
  EXPECT_EQ(CurrentArena(), nullptr);
  EXPECT_EQ(outer_arena.stats().misses, 0u);
  EXPECT_EQ(inner_arena.stats().misses, 0u);
}

TEST(InferenceArenaTest, ArenaIsThreadLocal) {
  InferenceArena arena;
  ArenaScope scope(&arena);
  InferenceArena* seen_on_worker = &arena;  // sentinel: must be overwritten
  std::thread worker([&] { seen_on_worker = CurrentArena(); });
  worker.join();
  // The scope routes only this thread; a fresh thread starts unrouted.
  EXPECT_EQ(seen_on_worker, nullptr);
  EXPECT_EQ(CurrentArena(), &arena);
}

TEST(InferenceArenaTest, BuffersOutliveTheArenaHandle) {
  std::shared_ptr<std::vector<std::byte>> buffer;
  {
    InferenceArena arena;
    buffer = arena.Acquire(7);
    ASSERT_EQ(buffer->size(), 7u);
  }
  // The pool state is shared_ptr-owned: releasing the buffer after the
  // handle died parks it into the (still-alive) state instead of crashing.
  buffer.reset();
}

TEST(InferenceArenaTest, ClearDropsPooledBuffersOnly) {
  InferenceArena arena;
  std::shared_ptr<std::vector<std::byte>> held = arena.Acquire(4);
  { auto released = arena.Acquire(4); }
  EXPECT_EQ(arena.stats().pooled, 1u);
  arena.Clear();
  InferenceArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.pooled, 0u);
  EXPECT_EQ(stats.outstanding, 1u);
  // A cleared pool means the next acquire heap-allocates again.
  auto fresh = arena.Acquire(4);
  EXPECT_EQ(arena.stats().misses, 3u);
}

TEST(InferenceArenaTest, ResetStatsKeepsLiveCounts) {
  InferenceArena arena;
  auto a = arena.Acquire(2);
  { auto b = arena.Acquire(2); }
  arena.ResetStats();
  InferenceArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.outstanding, 1u);
  EXPECT_EQ(stats.pooled, 1u);
}

TEST(InferenceArenaTest, SharedPoolIsThreadSafe) {
  InferenceArena arena;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Mix two sizes so free lists are contended from both sides.
        auto buffer = arena.Acquire((t + i) % 2 == 0 ? 16 : 32);
        (*buffer)[0] = static_cast<std::byte>(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  InferenceArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.pooled, stats.misses);
}

TEST(InferenceArenaTest, ArenaDoesNotChangeForwardBytes) {
  // Same model, same window: forwarding under an arena must be bitwise
  // identical to the plain heap — the arena only moves where bytes live.
  Rng rng(21);
  models::LstmConfig config;
  config.hidden_units = 8;
  models::LstmForecaster model(4, 3, config, &rng);
  model.SetTraining(false);
  Rng data_rng(22);
  Tensor window = Tensor::Uniform(Shape{2, 3, 4}, -1, 1, &data_rng);

  NoGradGuard guard;
  std::vector<Scalar> heap_bytes = model.Forward(window).ToVector();
  InferenceArena arena;
  std::vector<Scalar> warm_bytes;
  std::vector<Scalar> steady_bytes;
  {
    ArenaScope scope(&arena);
    warm_bytes = model.Forward(window).ToVector();
    steady_bytes = model.Forward(window).ToVector();
  }
  EXPECT_EQ(warm_bytes, heap_bytes);
  EXPECT_EQ(steady_bytes, heap_bytes);
}

TEST(InferenceArenaTest, SteadyStateForwardAllocatesNothing) {
  Rng rng(23);
  models::LstmConfig config;
  config.hidden_units = 8;
  models::LstmForecaster model(4, 3, config, &rng);
  model.SetTraining(false);
  Rng data_rng(24);
  Tensor window = Tensor::Uniform(Shape{2, 3, 4}, -1, 1, &data_rng);

  NoGradGuard guard;
  InferenceArena arena;
  {
    ArenaScope scope(&arena);
    model.Forward(window);  // warm-up populates the pool
  }
  uint64_t misses_after_warmup = arena.stats().misses;
  uint64_t heap_allocs_before =
      obs::Registry::Global().GetCounter("tensor.storage_allocs")->value();
  {
    ArenaScope scope(&arena);
    model.Forward(window);
  }
  // Every buffer of the second pass came from the pool: no arena miss, and
  // (when metrics are compiled in) no heap storage allocation either.
  EXPECT_EQ(arena.stats().misses, misses_after_warmup);
  EXPECT_GT(arena.stats().hits, 0u);
  uint64_t heap_allocs_after =
      obs::Registry::Global().GetCounter("tensor.storage_allocs")->value();
  EXPECT_EQ(heap_allocs_after, heap_allocs_before);
}

}  // namespace
}  // namespace emaf::tensor
