#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

TEST(AutogradTest, SimpleChainRule) {
  // y = (2x)^2 -> dy/dx = 8x.
  Tensor x = Tensor::FromVector(Shape{2}, {1.0, 3.0}).SetRequiresGrad(true);
  Tensor y = Mul(MulScalar(x, 2.0), MulScalar(x, 2.0));
  Sum(y).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{8, 24}));
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // z = x*x + x*x uses x through two paths.
  Tensor x = Tensor::FromVector(Shape{1}, {3.0}).SetRequiresGrad(true);
  Tensor a = Mul(x, x);
  Tensor b = Mul(x, x);
  Sum(Add(a, b)).Backward();
  EXPECT_EQ(x.grad().item(), 12.0);  // 2 * 2x
}

TEST(AutogradTest, SharedSubexpression) {
  Tensor x = Tensor::FromVector(Shape{1}, {2.0}).SetRequiresGrad(true);
  Tensor shared = Mul(x, x);           // x^2
  Tensor y = Mul(shared, shared);      // x^4 -> dy/dx = 4 x^3 = 32
  Sum(y).Backward();
  EXPECT_EQ(x.grad().item(), 32.0);
}

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::FromVector(Shape{1}, {5.0}).SetRequiresGrad(true);
  Sum(Mul(x, x)).Backward();
  EXPECT_EQ(x.grad().item(), 10.0);
  Sum(Mul(x, x)).Backward();
  EXPECT_EQ(x.grad().item(), 20.0);  // += semantics
  x.ZeroGrad();
  EXPECT_FALSE(x.grad().defined());
}

TEST(AutogradTest, NoGradGuardDisablesRecording) {
  Tensor x = Tensor::Ones(Shape{2}).SetRequiresGrad(true);
  NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_FALSE(y.TracksGrad());
}

TEST(AutogradTest, NoGradGuardNests) {
  Tensor x = Tensor::Ones(Shape{2}).SetRequiresGrad(true);
  {
    NoGradGuard outer;
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
  EXPECT_TRUE(Mul(x, x).TracksGrad());
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Tensor::FromVector(Shape{1}, {3.0}).SetRequiresGrad(true);
  Tensor y = Mul(x.Detach(), x);  // only one path tracked
  Sum(y).Backward();
  EXPECT_EQ(x.grad().item(), 3.0);  // d/dx (c * x) = c = 3
}

TEST(AutogradTest, ConstantsGetNoGradient) {
  Tensor x = Tensor::Ones(Shape{2}).SetRequiresGrad(true);
  Tensor c = Tensor::Full(Shape{2}, 2.0);
  Sum(Mul(x, c)).Backward();
  EXPECT_TRUE(x.grad().defined());
  EXPECT_FALSE(c.grad().defined());
}

TEST(AutogradTest, LongChainDepth) {
  Tensor x = Tensor::FromVector(Shape{1}, {1.0}).SetRequiresGrad(true);
  Tensor y = x;
  for (int i = 0; i < 100; ++i) y = MulScalar(y, 1.01);
  Sum(y).Backward();
  EXPECT_NEAR(x.grad().item(), std::pow(1.01, 100), 1e-9);
}

TEST(AutogradTest, WideFanOut) {
  Tensor x = Tensor::FromVector(Shape{1}, {2.0}).SetRequiresGrad(true);
  std::vector<Tensor> branches;
  for (int i = 0; i < 50; ++i) branches.push_back(Mul(x, x));
  Sum(Cat(branches, 0)).Backward();
  EXPECT_NEAR(x.grad().item(), 50 * 4.0, 1e-9);
}

TEST(AutogradDeathTest, BackwardNeedsSingleElement) {
  Tensor x = Tensor::Ones(Shape{3}).SetRequiresGrad(true);
  Tensor y = Mul(x, x);
  EXPECT_DEATH(y.Backward(), "single-element");
}

TEST(AutogradTest, BackwardOnGraphlessLeafIsNoOp) {
  Tensor x = Tensor::FromScalar(2.0).SetRequiresGrad(true);
  x.Backward();
  ASSERT_TRUE(x.grad().defined());
  EXPECT_EQ(x.grad().item(), 1.0);
}

TEST(AutogradTest, MixedTrackedUntrackedBranch) {
  Tensor x = Tensor::FromVector(Shape{1}, {2.0}).SetRequiresGrad(true);
  Tensor frozen = Tensor::FromVector(Shape{1}, {4.0});
  Tensor y = Add(Mul(x, frozen), Mul(frozen, frozen));
  Sum(y).Backward();
  EXPECT_EQ(x.grad().item(), 4.0);
}

TEST(GradCheckTest, AcceptsCorrectGradient) {
  Rng rng(1);
  Tensor x = Tensor::Uniform(Shape{3}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[0])); },
      {x});
  EXPECT_TRUE(r.ok);
  EXPECT_LT(r.max_error, 1e-7);
}

TEST(GradCheckTest, CatchesWrongGradient) {
  // Relu at exactly 0: analytic subgradient is 0 but the central finite
  // difference is 0.5, so the checker must flag the discrepancy.
  Tensor x = Tensor::FromVector(Shape{1}, {0.0});
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) { return Sum(Relu(in[0])); }, {x},
      1e-4, 1e-3);
  EXPECT_FALSE(r.ok);
  EXPECT_NEAR(r.max_error, 0.5, 1e-6);
}

}  // namespace
}  // namespace emaf::tensor
