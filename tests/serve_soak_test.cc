// Chaos soak harness for the request lifecycle (ISSUE PR-8, ctest label
// `soak`): seeded cycles of live servers under randomized fault specs,
// mixed pipelined traffic (known and unknown tenants, tiny and absent
// deadlines, pings, health probes), abrupt mid-traffic kills, and a final
// graceful drain. The invariant under chaos is the lifecycle contract:
//
//   - every request reaches exactly ONE terminal outcome — a reply
//     matched by id (never two, never an unknown id) or the loss of its
//     connection; nothing hangs (a receive timeout fails the soak);
//   - every successful forecast reply is bitwise identical to the module
//     path's bytes for that tenant;
//   - deadline shedding really happens (total expired > 0);
//   - the closing graceful drain completes with zero leaked store pins.
//
// The default run is bounded to ~1 s of wall clock so tier-1 stays fast;
// EMAF_SOAK_SECONDS=300 soaks for real. Everything is driven by one
// seeded Rng — a failing run reproduces exactly.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

double SoakSeconds() {
  if (const char* env = std::getenv("EMAF_SOAK_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) return seconds;
  }
  return 1.0;
}

const std::vector<std::string>& Tenants() {
  static const std::vector<std::string> ids = {"s0", "s1", "s2", "s3"};
  return ids;
}

// A randomized-but-seeded EMAF_FAULT_SPEC over the serving fault sites:
// low-probability, trigger-bounded chaos at the accept, read, write and
// cold-load layers.
std::string RandomFaultSpec(Rng* rng) {
  std::string spec;
  auto maybe = [&](const char* site, double max_p, int64_t max_triggers) {
    if (rng->UniformInt(0, 1) == 0) return;
    const double p =
        0.05 + (max_p - 0.05) *
                   static_cast<double>(rng->UniformInt(0, 100)) / 100.0;
    if (!spec.empty()) spec += ",";
    spec += StrCat(site, "=", p, ":", rng->UniformInt(1, max_triggers));
  };
  maybe("serve.server.accept", 0.3, 2);
  maybe("serve.server.read", 0.2, 2);
  maybe("serve.server.write", 0.2, 2);
  maybe("serve.store.load", 0.4, 3);
  return spec;
}

struct SoakTotals {
  uint64_t cycles = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;        // served forecasts, each bitwise-verified
  uint64_t expired = 0;   // kDeadlineExceeded replies
  uint64_t rejected = 0;  // kUnavailable replies (backpressure/faults)
  uint64_t not_found = 0; // unknown-tenant replies
  uint64_t conn_lost = 0; // requests terminal via connection loss
  uint64_t pongs = 0;
  uint64_t healths = 0;
};

class ServeSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/serve_soak_snapshots");
    expected_ = new std::map<std::string, std::vector<double>>(
        testutil::MakeTinySnapshotDir(*dir_, Tenants()));
    window_ = new tensor::Tensor(testutil::TinyWindow());
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete window_;
    window_ = nullptr;
    delete expected_;
    expected_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      ASSERT_TRUE(fault::Configure("", 0).ok());
    }
  }

  // One chaos cycle: start a server, maybe arm a random fault spec, pour a
  // pipelined burst of mixed traffic, maybe kill the server mid-traffic,
  // and account for every request reaching exactly one terminal outcome.
  void RunCycle(Rng* rng, bool expiry_cycle, SoakTotals* totals) {
    ++totals->cycles;
    ServerOptions options;
    if (expiry_cycle) {
      // Batches close neither by age nor by fill, so every
      // deadline-carrying request in this cycle deterministically expires
      // — the soak's guaranteed source of kDeadlineExceeded traffic.
      options.scheduler.max_delay_ticks = 1'000'000'000;
      options.scheduler.max_batch = 4096;
    }
    Result<Server> started = Server::Start(*dir_, options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    Server server = std::move(started).value();

    const bool chaos = fault::kFaultInjectionEnabled && !expiry_cycle &&
                       rng->UniformInt(0, 2) > 0;
    std::string spec;
    if (chaos) {
      spec = RandomFaultSpec(rng);
      ASSERT_TRUE(fault::Configure(spec, /*seed=*/totals->cycles).ok());
    }
    const bool kill_cycle = !expiry_cycle && rng->UniformInt(0, 3) == 0;
    SCOPED_TRACE(StrCat("cycle ", totals->cycles, " expiry=", expiry_cycle,
                        " kill=", kill_cycle, " spec=\"", spec, "\""));

    ClientOptions client_options;
    client_options.recv_timeout_ms = 10000;  // a hang fails the soak
    Result<Client> connected = Client::Connect(server.port(), client_options);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    Client client = std::move(connected).value();

    // Build one pipelined burst with our own id space so every reply can
    // be matched — and double replies or unknown ids caught — by id.
    struct Sent {
      FrameType type;
      std::string tenant;  // forecasts only
      bool known = false;
      bool has_deadline = false;
    };
    std::map<uint64_t, Sent> pending;
    std::string burst;
    const int64_t requests = 16 + rng->UniformInt(0, 24);
    uint64_t next_id = 1;
    for (int64_t i = 0; i < requests; ++i) {
      Frame frame;
      frame.request_id = next_id++;
      const int64_t kind = rng->UniformInt(0, 9);
      if (kind < 7) {
        frame.type = FrameType::kForecastRequest;
        const bool known = rng->UniformInt(0, 4) > 0;
        frame.tenant_id = known ? Tenants()[static_cast<size_t>(
                                      rng->UniformInt(0, 3))]
                                : "stranger";
        frame.payload = EncodeTensorPayload(*window_);
        bool with_deadline = expiry_cycle || rng->UniformInt(0, 3) == 0;
        if (with_deadline) {
          // Tiny in the expiry cycle (guaranteed shed), generous elsewhere
          // (guaranteed live).
          frame.SetDeadline(expiry_cycle
                                ? static_cast<uint64_t>(rng->UniformInt(1, 2))
                                : 1'000'000'000u);
        }
        pending[frame.request_id] =
            Sent{frame.type, frame.tenant_id, known,
                 frame.has_deadline()};
      } else if (kind < 9) {
        frame.type = FrameType::kPing;
        pending[frame.request_id] = Sent{frame.type, "", false, false};
      } else {
        frame.type = FrameType::kHealth;
        pending[frame.request_id] = Sent{frame.type, "", false, false};
      }
      burst += EncodeFrame(frame);
    }
    totals->sent += pending.size();

    Status poured = client.SendBytes(burst);
    if (kill_cycle) server.Stop();  // abrupt: mid-traffic process death
    if (!poured.ok()) {
      // A fault (or the kill) broke the stream mid-send: every request in
      // flight is terminal via connection loss — still exactly one outcome.
      EXPECT_EQ(poured.code(), StatusCode::kUnavailable)
          << poured.ToString();
      totals->conn_lost += pending.size();
      return;
    }

    while (!pending.empty()) {
      Result<Frame> reply = client.ReadFrame();
      if (!reply.ok()) {
        // The only legitimate read failure is losing the connection (a
        // fault closed it, or the kill). A receive timeout is a hang —
        // exactly what the lifecycle contract forbids.
        ASSERT_EQ(reply.status().code(), StatusCode::kUnavailable)
            << reply.status().ToString();
        totals->conn_lost += pending.size();
        pending.clear();
        break;
      }
      const uint64_t id = reply.value().request_id;
      auto it = pending.find(id);
      ASSERT_NE(it, pending.end())
          << "reply for id " << id
          << " — unknown or already answered (double reply)";
      const Sent sent = it->second;
      pending.erase(it);  // second reply for this id would fail above
      switch (reply.value().type) {
        case FrameType::kForecastResponse: {
          ASSERT_EQ(sent.type, FrameType::kForecastRequest);
          ASSERT_TRUE(sent.known) << "served an unknown tenant";
          Result<tensor::Tensor> forecast =
              DecodeTensorPayload(reply.value().payload);
          ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
          EXPECT_EQ(forecast.value().ToVector(), expected_->at(sent.tenant))
              << "served bytes diverged from the module path for "
              << sent.tenant;
          ++totals->ok;
          break;
        }
        case FrameType::kError: {
          Status carried = Status::Ok();
          ASSERT_TRUE(
              DecodeStatusPayload(reply.value().payload, &carried).ok());
          ASSERT_FALSE(carried.ok());
          if (carried.code() == StatusCode::kDeadlineExceeded) {
            EXPECT_TRUE(sent.has_deadline)
                << "deadline-free request expired: " << carried.ToString();
            ++totals->expired;
          } else if (carried.code() == StatusCode::kNotFound) {
            EXPECT_FALSE(sent.known) << carried.ToString();
            ++totals->not_found;
          } else {
            EXPECT_EQ(carried.code(), StatusCode::kUnavailable)
                << carried.ToString();
            ++totals->rejected;
          }
          break;
        }
        case FrameType::kPong:
          ASSERT_EQ(sent.type, FrameType::kPing);
          ++totals->pongs;
          break;
        case FrameType::kHealthReply: {
          ASSERT_EQ(sent.type, FrameType::kHealth);
          Result<HealthInfo> health =
              DecodeHealthPayload(reply.value().payload);
          ASSERT_TRUE(health.ok()) << health.status().ToString();
          EXPECT_EQ(health.value().state, ServeState::kServing);
          EXPECT_EQ(health.value().known_models, Tenants().size());
          ++totals->healths;
          break;
        }
        default:
          FAIL() << "unexpected reply type "
                 << FrameTypeName(reply.value().type);
      }
    }

    if (chaos) ASSERT_TRUE(fault::Configure("", 0).ok());
    if (!kill_cycle) {
      // A surviving server must still be coherent: residency is bounded by
      // what the store knows, and a quiesced store is fully evictable (no
      // request leaked a pin). A request whose connection died under a
      // fault may still be mid-forward — that pin is transient, so poll
      // briefly; only a pin that never releases is a leak.
      EXPECT_LE(server.store().stats().resident_models,
                static_cast<int64_t>(Tenants().size()));
      const auto evict_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      int64_t resident = -1;
      while (true) {
        server.store().EvictIdle(-1);
        resident = server.store().stats().resident_models;
        if (resident == 0 ||
            std::chrono::steady_clock::now() >= evict_deadline) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_EQ(resident, 0);
    }
  }

  static std::string* dir_;
  static std::map<std::string, std::vector<double>>* expected_;
  static tensor::Tensor* window_;
};

std::string* ServeSoakTest::dir_ = nullptr;
std::map<std::string, std::vector<double>>* ServeSoakTest::expected_ =
    nullptr;
tensor::Tensor* ServeSoakTest::window_ = nullptr;

TEST_F(ServeSoakTest, ChaosCyclesPreserveTheLifecycleInvariant) {
  Rng rng(0x50'41'4b'45ull);  // seeded: a failure reproduces exactly
  SoakTotals totals;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(SoakSeconds()));
  // At least one expiry cycle and a handful of chaos cycles even when the
  // budget is tiny; then keep soaking until the budget runs out.
  uint64_t cycle = 0;
  while (cycle < 4 || std::chrono::steady_clock::now() < deadline) {
    const bool expiry_cycle = cycle % 4 == 0;
    RunCycle(&rng, expiry_cycle, &totals);
    if (HasFatalFailure()) break;
    ++cycle;
  }

  // The traffic mix actually exercised every terminal path.
  EXPECT_GT(totals.ok, 0u) << "no forecast was ever served";
  EXPECT_GT(totals.expired, 0u) << "no deadline ever expired";
  EXPECT_GT(totals.not_found, 0u) << "no unknown tenant was ever asked";
  EXPECT_GT(totals.pongs, 0u);
  // Accounting identity: every request reached exactly one terminal state.
  EXPECT_EQ(totals.sent, totals.ok + totals.expired + totals.rejected +
                             totals.not_found + totals.conn_lost +
                             totals.pongs + totals.healths);
  std::cout << "[soak] cycles=" << totals.cycles << " sent=" << totals.sent
            << " ok=" << totals.ok << " expired=" << totals.expired
            << " rejected=" << totals.rejected
            << " not_found=" << totals.not_found
            << " conn_lost=" << totals.conn_lost
            << " pongs=" << totals.pongs << " healths=" << totals.healths
            << "\n";
}

// The soak's closing act, deterministic on its own: a graceful drain after
// real traffic completes with every reply flushed and zero leaked pins.
TEST_F(ServeSoakTest, GracefulDrainAfterTrafficLeaksNothing) {
  Result<Server> started = Server::Start(*dir_);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  Server server = std::move(started).value();
  Result<Client> connected = Client::Connect(server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();

  for (const std::string& tenant : Tenants()) {
    Result<tensor::Tensor> forecast = client.Forecast(tenant, *window_);
    ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
    EXPECT_EQ(forecast.value().ToVector(), expected_->at(tenant)) << tenant;
  }

  server.BeginDrain();
  ASSERT_TRUE(server.WaitDrained(/*timeout_ms=*/10000));
  EXPECT_EQ(server.state(), ServeState::kDraining);
  EXPECT_GE(server.store().EvictIdle(-1), 1);
  EXPECT_EQ(server.store().stats().resident_models, 0);
  EXPECT_FALSE(Client::Connect(server.port()).ok());
  server.Stop();
}

}  // namespace
}  // namespace emaf::serve
