#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

class LeafModule : public Module {
 public:
  explicit LeafModule(int64_t n) {
    weight_ = RegisterParameter("weight", Tensor::Ones(Shape{n}));
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{n}));
  }
  Tensor* weight_;
  Tensor* bias_;
};

class ParentModule : public Module {
 public:
  ParentModule() {
    own_ = RegisterParameter("own", Tensor::Zeros(Shape{2}));
    child_a_ = RegisterModule("child_a", std::make_unique<LeafModule>(3));
    child_b_ = RegisterModule("child_b", std::make_unique<LeafModule>(4));
  }
  Tensor* own_;
  LeafModule* child_a_;
  LeafModule* child_b_;
};

TEST(ModuleTest, ParametersAreRegisteredWithGrad) {
  LeafModule m(3);
  EXPECT_TRUE(m.weight_->requires_grad());
  EXPECT_EQ(m.Parameters().size(), 2u);
  EXPECT_EQ(m.ParameterCount(), 6);
}

TEST(ModuleTest, NamedParametersUseDottedPaths) {
  ParentModule m;
  std::vector<NamedParameter> named = m.NamedParameters();
  ASSERT_EQ(named.size(), 5u);
  EXPECT_EQ(named[0].name, "own");
  EXPECT_EQ(named[1].name, "child_a.weight");
  EXPECT_EQ(named[2].name, "child_a.bias");
  EXPECT_EQ(named[3].name, "child_b.weight");
  EXPECT_EQ(named[4].name, "child_b.bias");
}

TEST(ModuleTest, ParameterPointersAreStable) {
  ParentModule m;
  Tensor* before = m.child_a_->weight_;
  std::vector<NamedParameter> named = m.NamedParameters();
  EXPECT_EQ(named[1].value, before);
}

TEST(ModuleTest, TrainingFlagPropagates) {
  ParentModule m;
  EXPECT_TRUE(m.training());
  m.SetTraining(false);
  EXPECT_FALSE(m.training());
  EXPECT_FALSE(m.child_a_->training());
  EXPECT_FALSE(m.child_b_->training());
  m.SetTraining(true);
  EXPECT_TRUE(m.child_b_->training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  LeafModule m(2);
  tensor::Sum(tensor::Mul(*m.weight_, *m.weight_)).Backward();
  EXPECT_TRUE(m.weight_->grad().defined());
  m.ZeroGrad();
  EXPECT_FALSE(m.weight_->grad().defined());
}

TEST(ModuleDeathTest, DuplicateParameterName) {
  class Bad : public Module {
   public:
    Bad() {
      RegisterParameter("w", Tensor::Zeros(Shape{1}));
      RegisterParameter("w", Tensor::Zeros(Shape{1}));
    }
  };
  EXPECT_DEATH(Bad(), "duplicate");
}

TEST(ModuleDeathTest, DuplicateChildName) {
  class Bad : public Module {
   public:
    Bad() {
      RegisterModule("c", std::make_unique<LeafModule>(1));
      RegisterModule("c", std::make_unique<LeafModule>(1));
    }
  };
  EXPECT_DEATH(Bad(), "duplicate");
}

TEST(ModuleTest, ParameterCountNested) {
  ParentModule m;
  EXPECT_EQ(m.ParameterCount(), 2 + 6 + 8);
}

}  // namespace
}  // namespace emaf::nn
