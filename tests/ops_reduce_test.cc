#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

TEST(SumTest, AllElements) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor s = Sum(x);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.item(), 10);
}

TEST(SumTest, AlongFirstAxis) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Sum(x, {0}, /*keepdim=*/false);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_EQ(s.ToVector(), (std::vector<double>{5, 7, 9}));
}

TEST(SumTest, AlongLastAxisKeepdim) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Sum(x, {1}, /*keepdim=*/true);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_EQ(s.ToVector(), (std::vector<double>{6, 15}));
}

TEST(SumTest, MultipleAxes) {
  Tensor x = Tensor::Ones(Shape{2, 3, 4});
  Tensor s = Sum(x, {0, 2}, /*keepdim=*/false);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_EQ(s.ToVector(), (std::vector<double>{8, 8, 8}));
}

TEST(SumTest, NegativeAxis) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Sum(x, {-1}, false).ToVector(), (std::vector<double>{6, 15}));
}

TEST(SumTest, EmptyAxesIsIdentity) {
  Tensor x = Tensor::FromVector(Shape{2}, {3, 4});
  EXPECT_EQ(Sum(x, {}, false).ToVector(), x.ToVector());
}

TEST(SumTest, GradBroadcasts) {
  Tensor x = Tensor::Zeros(Shape{2, 3}).SetRequiresGrad(true);
  Sum(x).Backward();
  for (double v : x.grad().ToVector()) EXPECT_EQ(v, 1.0);
}

TEST(SumTest, DimGradBroadcasts) {
  Tensor x = Tensor::Zeros(Shape{2, 3}).SetRequiresGrad(true);
  Tensor s = Sum(x, {0}, false);  // [3]
  Sum(Mul(s, Tensor::FromVector(Shape{3}, {1, 2, 3}))).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{1, 2, 3, 1, 2, 3}));
}

TEST(MeanTest, AllAndDims) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(Mean(x).item(), 2.5);
  EXPECT_EQ(Mean(x, {0}, false).ToVector(), (std::vector<double>{2, 3}));
  EXPECT_EQ(Mean(x, {1}, false).ToVector(), (std::vector<double>{1.5, 3.5}));
}

TEST(MeanTest, GradScalesByCount) {
  Tensor x = Tensor::Zeros(Shape{4}).SetRequiresGrad(true);
  Mean(x).Backward();
  for (double v : x.grad().ToVector()) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(MaxTest, ValuesAndShapes) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 7, 3, 4, 5, 6});
  Tensor m = Max(x, 1, /*keepdim=*/false);
  EXPECT_EQ(m.shape(), (Shape{2}));
  EXPECT_EQ(m.ToVector(), (std::vector<double>{7, 6}));
  Tensor mk = Max(x, 0, /*keepdim=*/true);
  EXPECT_EQ(mk.shape(), (Shape{1, 3}));
  EXPECT_EQ(mk.ToVector(), (std::vector<double>{4, 7, 6}));
}

TEST(MinTest, Values) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 7, 3, 4, 5, 0});
  EXPECT_EQ(Min(x, 1, false).ToVector(), (std::vector<double>{1, 0}));
}

TEST(MaxTest, GradGoesToArgmaxOnly) {
  Tensor x =
      Tensor::FromVector(Shape{2, 3}, {1, 7, 3, 4, 5, 6}).SetRequiresGrad(true);
  Sum(Max(x, 1, false)).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{0, 1, 0, 0, 0, 1}));
}

TEST(MinTest, GradGoesToArgminOnly) {
  Tensor x =
      Tensor::FromVector(Shape{2, 2}, {3, 1, 2, 5}).SetRequiresGrad(true);
  Sum(Min(x, 1, false)).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{0, 1, 1, 0}));
}

TEST(ArgMaxTest, IndicesAndShapes) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 7, 3, 4, 5, 6});
  Tensor a = ArgMax(x, 1, false);
  EXPECT_EQ(a.ToVector(), (std::vector<double>{1, 2}));
  Tensor ak = ArgMax(x, 0, true);
  EXPECT_EQ(ak.shape(), (Shape{1, 3}));
  EXPECT_EQ(ak.ToVector(), (std::vector<double>{1, 0, 1}));
}

TEST(TopKMaskTest, SelectsLargestPerRow) {
  Tensor x = Tensor::FromVector(Shape{2, 4}, {1, 9, 3, 7, 8, 2, 6, 4});
  Tensor m = TopKMask(x, 2, 1);
  EXPECT_EQ(m.ToVector(), (std::vector<double>{0, 1, 0, 1, 1, 0, 1, 0}));
}

TEST(TopKMaskTest, KGreaterThanDimKeepsAll) {
  Tensor x = Tensor::FromVector(Shape{1, 3}, {1, 2, 3});
  EXPECT_EQ(TopKMask(x, 5, 1).ToVector(), (std::vector<double>{1, 1, 1}));
}

TEST(TopKMaskTest, KZeroKeepsNone) {
  Tensor x = Tensor::FromVector(Shape{1, 3}, {1, 2, 3});
  EXPECT_EQ(TopKMask(x, 0, 1).ToVector(), (std::vector<double>{0, 0, 0}));
}

TEST(TopKMaskTest, TieBreaksTowardLowerIndex) {
  Tensor x = Tensor::FromVector(Shape{1, 4}, {5, 5, 5, 5});
  EXPECT_EQ(TopKMask(x, 2, 1).ToVector(), (std::vector<double>{1, 1, 0, 0}));
}

TEST(TopKMaskTest, AlongFirstAxis) {
  Tensor x = Tensor::FromVector(Shape{3, 2}, {1, 6, 5, 4, 3, 2});
  Tensor m = TopKMask(x, 1, 0);
  EXPECT_EQ(m.ToVector(), (std::vector<double>{0, 1, 1, 0, 0, 0}));
}

TEST(SumToTest, ReducesBroadcastAxes) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor reduced = internal::SumTo(x, Shape{1, 3});
  EXPECT_EQ(reduced.ToVector(), (std::vector<double>{5, 7, 9}));
  Tensor to_scalar = internal::SumTo(x, Shape{});
  EXPECT_EQ(to_scalar.item(), 21);
  Tensor to_row = internal::SumTo(x, Shape{3});
  EXPECT_EQ(to_row.ToVector(), (std::vector<double>{5, 7, 9}));
}

TEST(SumToTest, SameShapeIsCopy) {
  Tensor x = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor y = internal::SumTo(x, Shape{2});
  y.data()[0] = 50;
  EXPECT_EQ(x.At({0}), 1);  // deep copy, original untouched
}

class ReduceGradTest : public ::testing::TestWithParam<int> {};

TEST_P(ReduceGradTest, SumMeanMaxAgainstFiniteDifferences) {
  Rng rng(100 + GetParam());
  Tensor x = Tensor::Uniform(Shape{3, 4, 2}, -2, 2, &rng);
  int64_t axis = GetParam() % 3;
  bool keepdim = GetParam() % 2 == 0;
  GradCheckResult r1 = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Mul(Sum(in[0], {axis}, keepdim),
                       Sum(in[0], {axis}, keepdim)));
      },
      {x});
  EXPECT_TRUE(r1.ok) << "sum axis " << axis << ": " << r1.max_error;
  GradCheckResult r2 = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Mean(in[0], {axis}, keepdim));
      },
      {x});
  EXPECT_TRUE(r2.ok) << "mean axis " << axis << ": " << r2.max_error;
  GradCheckResult r3 = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Max(in[0], axis, keepdim));
      },
      {x});
  EXPECT_TRUE(r3.ok) << "max axis " << axis << ": " << r3.max_error;
}

INSTANTIATE_TEST_SUITE_P(Axes, ReduceGradTest, ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace emaf::tensor
