// Trace-file validity for the observability subsystem (common/trace.h):
// the emitted file is well-formed JSON in Chrome trace-event format, every
// begin has a matching end on the same thread, and timestamps are
// monotone. Spans are opened from 8 threads so the suite is meaningful
// under the `tsan` ctest label (-DEMAF_SANITIZE=thread build).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"

namespace emaf::obs {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- Minimal JSON well-formedness checker ---------------------------------
// Recursive descent over the full grammar (objects, arrays, strings with
// escapes, numbers, literals). Returns true iff `text` is one valid JSON
// value with nothing trailing.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool Array() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return false;
  }
  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

#if EMAF_METRICS_ENABLED

struct ParsedEvent {
  std::string name;
  char phase = '?';
  double ts = 0.0;
  int64_t tid = -1;
};

// Extracts "key": from one event line (the writer emits one event per
// line, which the JSON checker above independently validates).
std::string ExtractString(const std::string& line, const std::string& key) {
  size_t pos = line.find("\"" + key + "\": \"");
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  pos += key.size() + 5;
  size_t end = line.find('"', pos);
  return line.substr(pos, end - pos);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  size_t pos = line.find("\"" + key + "\": ");
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  return std::strtod(line.c_str() + pos + key.size() + 4, nullptr);
}

std::vector<ParsedEvent> ParseEvents(const std::string& contents) {
  std::vector<ParsedEvent> events;
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\"", 0) != 0) continue;
    ParsedEvent e;
    e.name = ExtractString(line, "name");
    e.phase = ExtractString(line, "ph")[0];
    e.ts = ExtractNumber(line, "ts");
    e.tid = static_cast<int64_t>(ExtractNumber(line, "tid"));
    events.push_back(e);
  }
  return events;
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { Trace::Disable(); }
};

TEST_F(TraceTest, DisabledByDefaultAndSpansAreDropped) {
  Trace::Disable();
  EXPECT_FALSE(Trace::Enabled());
  { EMAF_TRACE_SPAN("dropped"); }
  EXPECT_TRUE(Trace::Flush().ok());  // no-op while disabled
}

TEST_F(TraceTest, EmitsWellFormedBalancedMonotoneTrace) {
  std::string path = TempPath("trace_multi.json");
  Trace::Enable(path);
  ASSERT_TRUE(Trace::Enabled());

  {
    EMAF_TRACE_SPAN("main/outer");
    {
      EMAF_TRACE_SPAN_DYN(std::string("main/inner"));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < 50; ++i) {
          ScopedSpan span("worker/" + std::to_string(t));
          ScopedSpan nested("worker_nested/" + std::to_string(t));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_TRUE(Trace::Flush().ok());

  std::string contents = ReadFile(path);
  // 1. Well-formed JSON.
  EXPECT_TRUE(JsonChecker(contents).Valid()) << contents.substr(0, 400);

  // 2. Balanced begin/end per thread, monotone global timestamps.
  std::vector<ParsedEvent> events = ParseEvents(contents);
  // 2 main spans + 8 threads * 50 iterations * 2 spans, x2 events each.
  ASSERT_EQ(events.size(), static_cast<size_t>(2 * (2 + 8 * 50 * 2)));
  double last_ts = -1.0;
  std::map<int64_t, int64_t> open_per_tid;
  for (const ParsedEvent& e : events) {
    EXPECT_GE(e.ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = e.ts;
    EXPECT_GE(e.tid, 0);
    if (e.phase == 'B') {
      ++open_per_tid[e.tid];
    } else {
      ASSERT_EQ(e.phase, 'E');
      --open_per_tid[e.tid];
      EXPECT_GE(open_per_tid[e.tid], 0)
          << "end without begin on tid " << e.tid;
    }
  }
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  }
}

TEST_F(TraceTest, FlushClearsTheBuffer) {
  std::string path = TempPath("trace_clear.json");
  Trace::Enable(path);
  { EMAF_TRACE_SPAN("once"); }
  ASSERT_TRUE(Trace::Flush().ok());
  ASSERT_EQ(ParseEvents(ReadFile(path)).size(), 2u);
  // Nothing new buffered: a second flush must not rewrite the file.
  std::remove(path.c_str());
  ASSERT_TRUE(Trace::Flush().ok());
  std::ifstream second(path);
  EXPECT_FALSE(second.is_open());
}

TEST_F(TraceTest, NamesAreJsonEscaped) {
  std::string path = TempPath("trace_escape.json");
  Trace::Enable(path);
  { ScopedSpan span("quote\"back\\slash"); }
  ASSERT_TRUE(Trace::Flush().ok());
  std::string contents = ReadFile(path);
  EXPECT_TRUE(JsonChecker(contents).Valid()) << contents;
}

TEST_F(TraceTest, SpanActiveStateLatchedAtConstruction) {
  std::string path = TempPath("trace_latch.json");
  // Span created while disabled, destroyed while enabled: dropped.
  Trace::Disable();
  {
    ScopedSpan span("latched_out");
    Trace::Enable(path);
  }
  { ScopedSpan span("recorded"); }
  ASSERT_TRUE(Trace::Flush().ok());
  std::string contents = ReadFile(path);
  EXPECT_EQ(contents.find("latched_out"), std::string::npos);
  EXPECT_NE(contents.find("recorded"), std::string::npos);
}

TEST_F(TraceTest, ThreadIdsAreSmallAndStable) {
  int64_t id = Trace::CurrentThreadId();
  EXPECT_GE(id, 0);
  EXPECT_EQ(Trace::CurrentThreadId(), id);
}

#else  // !EMAF_METRICS_ENABLED

TEST(TraceTest, CompiledOutTracingStaysDisabled) {
  Trace::Enable("/dev/null");
  EXPECT_FALSE(Trace::Enabled());
  { EMAF_TRACE_SPAN("off"); }
  EXPECT_TRUE(Trace::Flush().ok());
}

#endif  // EMAF_METRICS_ENABLED

TEST(JsonCheckerTest, Sanity) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x\"y"], "b": {}})").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": ").Valid());
  EXPECT_FALSE(JsonChecker("{]").Valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1} trailing").Valid());
}

}  // namespace
}  // namespace emaf::obs
