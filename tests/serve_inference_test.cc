// End-to-end train -> snapshot -> serve tests (ISSUE acceptance): for every
// model family in the paper's Table 2, an InferenceEngine loaded from a
// snapshot directory reproduces core::Predict's test-set predictions
// byte-for-byte at any thread count, serves steady-state requests without
// heap allocation or tape construction, and exposes metrics and fault
// sites for the observability harness.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "models/var_forecaster.h"
#include "serve/inference_engine.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"
#include "ts/window.h"

namespace emaf::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 5;
constexpr int64_t kSteps = 3;

graph::AdjacencyMatrix TestGraph() {
  graph::AdjacencyMatrix adj(kVars);
  for (int64_t i = 0; i + 1 < kVars; ++i) {
    adj.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
    adj.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
  }
  return adj;
}

models::ModelConfig FamilyConfig(const std::string& family) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 2;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family != "LSTM" && family != "VAR") config.adjacency = TestGraph();
  return config;
}

const std::vector<std::string>& AllFamilies() {
  static const std::vector<std::string> families = {"LSTM", "VAR", "A3TGCN",
                                                    "ASTGCN", "MTGNN"};
  return families;
}

// Trains all five families once, snapshots them into one directory, and
// records the predictions core::Predict makes on a fixed test window — the
// ground truth every serving assertion compares against byte-for-byte.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    namespace fs = std::filesystem;
    dir_ = new std::string(::testing::TempDir() + "/serve_snapshots");
    fs::remove_all(*dir_);
    ASSERT_TRUE(fs::create_directories(*dir_));

    Rng data_rng(71);
    ts::WindowDataset train;
    train.inputs = Tensor::Uniform(Shape{16, kSteps, kVars}, -1, 1, &data_rng);
    train.targets = Tensor::Uniform(Shape{16, kVars}, -1, 1, &data_rng);
    test_inputs_ = new Tensor(
        Tensor::Uniform(Shape{4, kSteps, kVars}, -1, 1, &data_rng));
    expected_ = new std::map<std::string, std::vector<double>>();

    for (size_t i = 0; i < AllFamilies().size(); ++i) {
      const std::string& family = AllFamilies()[i];
      models::ModelConfig config = FamilyConfig(family);
      Rng model_rng(100 + static_cast<uint64_t>(i));
      std::unique_ptr<models::Forecaster> model =
          models::CreateForecasterOrDie(config, &model_rng);
      if (auto* var = dynamic_cast<models::VarForecaster*>(model.get())) {
        var->Fit(train.inputs, train.targets);
      } else {
        core::TrainConfig train_config;
        train_config.epochs = 10;
        core::TrainForecaster(model.get(), train, train_config);
      }
      (*expected_)[family] =
          core::Predict(model.get(), *test_inputs_).ToVector();
      Status saved = models::SaveForecasterSnapshot(
          model.get(), config, *dir_ + "/" + family + ".snapshot");
      ASSERT_TRUE(saved.ok()) << saved.ToString();
    }
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete expected_;
    expected_ = nullptr;
    delete test_inputs_;
    test_inputs_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static InferenceEngine LoadEngineOrDie() {
    Result<InferenceEngine> engine = InferenceEngine::Load(*dir_);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
  }

  static std::string* dir_;
  static Tensor* test_inputs_;
  static std::map<std::string, std::vector<double>>* expected_;
};

std::string* ServeTest::dir_ = nullptr;
Tensor* ServeTest::test_inputs_ = nullptr;
std::map<std::string, std::vector<double>>* ServeTest::expected_ = nullptr;

TEST_F(ServeTest, LoadsAllSnapshotsSortedAndInEvalMode) {
  InferenceEngine engine = LoadEngineOrDie();
  EXPECT_EQ(engine.num_models(), 5);
  // Ids are snapshot filename stems, sorted.
  EXPECT_EQ(engine.individual_ids(),
            (std::vector<std::string>{"A3TGCN", "ASTGCN", "LSTM", "MTGNN",
                                      "VAR"}));
  for (const std::string& family : AllFamilies()) {
    ASSERT_NE(engine.model(family), nullptr) << family;
    // Eval mode is set once at load; the request path never writes it.
    EXPECT_FALSE(engine.model(family)->training()) << family;
  }
  EXPECT_EQ(engine.model("nobody"), nullptr);
}

TEST_F(ServeTest, ForecastMatchesEvaluatorBytesForEveryFamily) {
  InferenceEngine engine = LoadEngineOrDie();
  for (const std::string& family : AllFamilies()) {
    Result<Tensor> prediction = engine.Forecast(family, *test_inputs_);
    ASSERT_TRUE(prediction.ok()) << family << ": "
                                 << prediction.status().ToString();
    // Byte-for-byte: the snapshot round-trip (weights as raw doubles,
    // adjacency via FormatExact) must lose nothing.
    EXPECT_EQ(prediction.value().ToVector(), expected_->at(family)) << family;
  }
}

TEST_F(ServeTest, BatchIsByteIdenticalAtOneTwoAndEightThreads) {
  InferenceEngine engine = LoadEngineOrDie();
  // Two requests per family so threads genuinely contend on shared models.
  std::vector<ForecastRequest> requests;
  for (const std::string& family : AllFamilies()) {
    requests.push_back({family, *test_inputs_});
    requests.push_back({family, *test_inputs_});
  }
  for (int64_t threads : {1, 2, 8}) {
    common::ThreadPool::SetGlobalNumThreads(threads);
    std::vector<Result<Tensor>> results = engine.ForecastBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "threads=" << threads << " request " << i;
      EXPECT_EQ(results[i].value().ToVector(),
                expected_->at(requests[i].individual_id))
          << "threads=" << threads << " request " << i;
    }
  }
  common::ThreadPool::SetGlobalNumThreads(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
}

TEST_F(ServeTest, SteadyStateRequestsAreHeapAndTapeFree) {
  InferenceEngine engine = LoadEngineOrDie();
  for (const std::string& family : AllFamilies()) {
    ASSERT_TRUE(engine.Forecast(family, *test_inputs_).ok());  // warm-up
  }
  tensor::InferenceArena::Stats warm = engine.arena_stats();
  obs::Registry& registry = obs::Registry::Global();
  uint64_t storage_allocs_before =
      registry.GetCounter("tensor.storage_allocs")->value();
  uint64_t gradfn_allocs_before =
      registry.GetCounter("tensor.gradfn_allocs")->value();
  for (const std::string& family : AllFamilies()) {
    ASSERT_TRUE(engine.Forecast(family, *test_inputs_).ok());
  }
  tensor::InferenceArena::Stats steady = engine.arena_stats();
  // Warm pool: the second pass recycles every buffer (no new misses) and
  // allocates nothing on the heap; NoGradGuard keeps the tape empty.
  EXPECT_EQ(steady.misses, warm.misses);
  EXPECT_GT(steady.hits, warm.hits);
  EXPECT_EQ(registry.GetCounter("tensor.storage_allocs")->value(),
            storage_allocs_before);
  EXPECT_EQ(registry.GetCounter("tensor.gradfn_allocs")->value(),
            gradfn_allocs_before);
}

TEST_F(ServeTest, RequestAndLoadMetricsAreRecorded) {
  obs::Registry& registry = obs::Registry::Global();
  uint64_t requests_before =
      registry.GetCounter("serve.requests_total")->value();
  InferenceEngine engine = LoadEngineOrDie();
  ASSERT_TRUE(engine.Forecast("LSTM", *test_inputs_).ok());
  ASSERT_TRUE(engine.Forecast("VAR", *test_inputs_).ok());
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(registry.GetCounter("serve.requests_total")->value(),
              requests_before + 2);
    EXPECT_EQ(registry.GetGauge("serve.loaded_models")->value(), 5.0);
    double hit_rate = registry.GetGauge("serve.arena_hit_rate")->value();
    EXPECT_GE(hit_rate, 0.0);
    EXPECT_LE(hit_rate, 1.0);
    EXPECT_GE(registry
                  .GetHistogram("serve.request_seconds",
                                obs::DefaultSecondsBounds())
                  ->count(),
              2u);
  }
}

// The ISSUE acceptance anchor for budgeted serving: a 2-of-5 residency
// budget forces continual eviction and reload across a request sweep, yet
// every family's bytes match the unconstrained (PR-4 eager) engine — i.e.
// core::Predict's ground truth — at 1, 2 and 8 threads. The sweep runs
// once per execution mode (compiled plans on / off); both modes must
// serve the same ground-truth bytes, and with plans on the continual
// eviction means every reload compiles against a fresh cache — a stale
// plan surviving eviction would diverge from the reloaded weights here.
TEST_F(ServeTest, ConstrainedBudgetSweepIsByteIdenticalToEagerEngine) {
  obs::Registry& registry = obs::Registry::Global();
  for (bool use_plans : {true, false}) {
    uint64_t evictions_before =
        obs::kMetricsEnabled
            ? registry.GetCounter("serve.store.evictions_total")->value()
            : 0;
    uint64_t plan_compiles_before =
        obs::kMetricsEnabled
            ? registry.GetCounter("serve.plan_cache_misses")->value()
            : 0;
    EngineOptions options;
    options.max_resident_models = 2;
    options.use_compiled_plans = use_plans;
    Result<InferenceEngine> engine = InferenceEngine::Load(*dir_, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // Budgeted mode lists without loading.
    EXPECT_EQ(engine.value().num_models(), 5);
    EXPECT_EQ(engine.value().store().stats().cold_loads, 0u);

    for (int64_t threads : {1, 2, 8}) {
      common::ThreadPool::SetGlobalNumThreads(threads);
      for (int round = 0; round < 2; ++round) {
        for (const std::string& family : AllFamilies()) {
          Result<Tensor> prediction =
              engine.value().Forecast(family, *test_inputs_);
          ASSERT_TRUE(prediction.ok())
              << family << " plans=" << use_plans << " threads=" << threads
              << ": " << prediction.status().ToString();
          // An evicted-and-reloaded model must serve the same bytes as one
          // that was never evicted — in either execution mode.
          EXPECT_EQ(prediction.value().ToVector(), expected_->at(family))
              << family << " plans=" << use_plans << " threads=" << threads;
        }
      }
    }
    common::ThreadPool::SetGlobalNumThreads(1);

    ModelStore::Stats stats = engine.value().store().stats();
    EXPECT_LE(stats.resident_models, 2);
    // 5 tenants cycling through 2 slots: the budget provably bound.
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.cold_loads, 5u);  // reloads, not just first loads
    if (obs::kMetricsEnabled) {
      EXPECT_GT(registry.GetCounter("serve.store.evictions_total")->value(),
                evictions_before);
      uint64_t plan_compiles =
          registry.GetCounter("serve.plan_cache_misses")->value();
      if (use_plans) {
        // Each reload recompiles (the plan cache dies with residency).
        EXPECT_GT(plan_compiles, plan_compiles_before);
      } else {
        EXPECT_EQ(plan_compiles, plan_compiles_before);
      }
    }
  }
}

// The plan-invalidation contract, pinned end to end: a compiled plan is
// cached per residency, so evicting a model drops its plan with it, and a
// re-request after the snapshot file changed on disk must serve the NEW
// weights' bytes — a stale plan surviving eviction would keep serving the
// old constants.
TEST(ServePlanLifecycle, EvictionDropsCachedPlanAndReloadServesNewWeights) {
  namespace tu = testutil;
  std::string dir = ::testing::TempDir() + "/plan_lifecycle_snapshots";
  std::map<std::string, std::vector<double>> old_expected =
      tu::MakeTinySnapshotDir(dir, {"alpha"});
  Tensor window = tu::TinyWindow();

  obs::Registry& registry = obs::Registry::Global();
  uint64_t hits_before =
      obs::kMetricsEnabled
          ? registry.GetCounter("serve.plan_cache_hits")->value()
          : 0;

  EngineOptions options;
  options.max_resident_models = 1;
  Result<InferenceEngine> engine = InferenceEngine::Load(dir, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Two requests within one residency: the second reuses the cached plan.
  for (int i = 0; i < 2; ++i) {
    Result<Tensor> served = engine.value().Forecast("alpha", window);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served.value().ToVector(), old_expected.at("alpha"));
  }
  if (obs::kMetricsEnabled) {
    EXPECT_GT(registry.GetCounter("serve.plan_cache_hits")->value(),
              hits_before);
  }

  // Replace the snapshot on disk with a differently-seeded model.
  models::ModelConfig config = tu::TinyLstmConfig();
  Rng rng(990099);
  std::unique_ptr<models::Forecaster> fresh =
      models::CreateForecasterOrDie(config, &rng);
  std::vector<double> new_expected =
      core::Predict(fresh.get(), window).ToVector();
  ASSERT_NE(new_expected, old_expected.at("alpha"));
  ASSERT_TRUE(models::SaveForecasterSnapshot(fresh.get(), config,
                                             dir + "/alpha.snapshot")
                  .ok());

  // Evict: the residency ends and the plan cache must die with it.
  EXPECT_GE(engine.value().store().EvictIdle(-1), 1);
  Result<Tensor> reloaded = engine.value().Forecast("alpha", window);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().ToVector(), new_expected)
      << "stale plan served the pre-reload weights";
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, BudgetedModeHasNoStableModelPointers) {
  EngineOptions options;
  options.max_resident_models = 2;
  Result<InferenceEngine> engine = InferenceEngine::Load(*dir_, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine.value().Forecast("LSTM", *test_inputs_).ok());
  // Residency is transient under a budget, so the engine refuses to hand
  // out raw pointers that an eviction could invalidate.
  EXPECT_EQ(engine.value().model("LSTM"), nullptr);
}

TEST_F(ServeTest, UnknownIndividualIsNotFound) {
  InferenceEngine engine = LoadEngineOrDie();
  Result<Tensor> result = engine.Forecast("stranger", *test_inputs_);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ServeTest, MissingAndEmptyDirectoriesAreNotFound) {
  EXPECT_EQ(InferenceEngine::Load("/nonexistent/snapshots").status().code(),
            StatusCode::kNotFound);
  std::string empty_dir = ::testing::TempDir() + "/serve_empty";
  std::filesystem::create_directories(empty_dir);
  EXPECT_EQ(InferenceEngine::Load(empty_dir).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServeTest, LoadFaultSiteFailsTheLoad) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  ASSERT_TRUE(fault::Configure("serve.load=1", 1).ok());
  Result<InferenceEngine> engine = InferenceEngine::Load(*dir_);
  EXPECT_EQ(engine.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(fault::Configure("", 0).ok());
}

TEST_F(ServeTest, RequestFaultSiteFailsOnlyTheTargetedIndividual) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  InferenceEngine engine = LoadEngineOrDie();
  ASSERT_TRUE(fault::Configure("serve.request/LSTM=1", 1).ok());
  EXPECT_EQ(engine.Forecast("LSTM", *test_inputs_).status().code(),
            StatusCode::kUnavailable);
  // The site is scoped per individual: other ids keep serving.
  EXPECT_TRUE(engine.Forecast("VAR", *test_inputs_).ok());
  ASSERT_TRUE(fault::Configure("", 0).ok());
}

}  // namespace
}  // namespace emaf::serve
