// Unit tests for the checkpoint journal (src/core/checkpoint.h): CRC-32,
// record encode/decode round-trips, escaping, torn-record tolerance and
// corruption detection.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"

namespace emaf::core {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

JournalRecord SampleRecord() {
  JournalRecord record;
  record.key = "A3TGCN:CORR:0.40000000000000002:2:static";
  record.cell_status = Status::Ok();
  record.retries = 3;
  record.per_individual_mse = {0.96981287892680601, 1.0 / 3.0, 2.0 / 7.0};
  record.per_individual_retries = {0, 1, 2};
  return record;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE 802.3 reference values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  JournalRecord record = SampleRecord();
  Result<JournalRecord> decoded = DecodeJournalRecord(
      EncodeJournalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().key, record.key);
  EXPECT_TRUE(decoded.value().cell_status.ok());
  EXPECT_EQ(decoded.value().retries, record.retries);
  // FormatExact gives bit-exact double round-trips.
  EXPECT_EQ(decoded.value().per_individual_mse, record.per_individual_mse);
  EXPECT_EQ(decoded.value().per_individual_retries,
            record.per_individual_retries);
}

TEST(JournalRecordTest, FailedCellRoundTripsStatusAndMessage) {
  JournalRecord record;
  record.key = "MTGNN:RAND:1:5:static";
  record.cell_status = Status::Aborted(
      "MTGNN_RAND individual 3: recovery budget exhausted|with % tricky\n"
      "bytes\r");
  record.retries = 6;
  Result<JournalRecord> decoded =
      DecodeJournalRecord(EncodeJournalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().cell_status.code(), StatusCode::kAborted);
  EXPECT_EQ(decoded.value().cell_status.message(),
            record.cell_status.message());
  EXPECT_TRUE(decoded.value().per_individual_mse.empty());
}

TEST(JournalRecordTest, EncodedLineHasNoRawNewlineOrPipeInFields) {
  JournalRecord record;
  record.key = "k";
  record.cell_status = Status::DataLoss("a|b\nc");
  std::string line = EncodeJournalRecord(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  // The message's '|' must be escaped: splitting on '|' yields exactly the
  // structural fields (crc, v1, key, code, msg, retries, n).
  int64_t bars = 0;
  for (char c : line) bars += c == '|' ? 1 : 0;
  EXPECT_EQ(bars, 6);
}

TEST(JournalRecordTest, ChecksumMismatchIsDataLoss) {
  std::string line = EncodeJournalRecord(SampleRecord());
  line.back() = line.back() == '0' ? '1' : '0';  // corrupt payload
  Result<JournalRecord> decoded = DecodeJournalRecord(line);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(JournalRecordTest, TruncatedLineIsDataLoss) {
  std::string line = EncodeJournalRecord(SampleRecord());
  Result<JournalRecord> decoded =
      DecodeJournalRecord(line.substr(0, line.size() / 2));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(JournalRecordTest, UnknownStatusCodeNameRejected) {
  // Build a structurally valid line with a bogus code by re-encoding.
  JournalRecord record = SampleRecord();
  std::string line = EncodeJournalRecord(record);
  // Splice "OK" -> "NO" and fix the checksum by re-deriving from scratch:
  // simplest is to corrupt and confirm kDataLoss (checksum catches it).
  size_t pos = line.find("|OK|");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 4, "|NO|");
  EXPECT_FALSE(DecodeJournalRecord(line).ok());
}

TEST(CheckpointJournalTest, AppendThenLoad) {
  std::string path = TempPath("journal_roundtrip.log");
  std::remove(path.c_str());
  {
    Result<CheckpointJournal> journal = CheckpointJournal::OpenForAppend(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal.value().Append(SampleRecord()).ok());
    JournalRecord failed;
    failed.key = "LSTM:CORR:0.2:5:static";
    failed.cell_status = Status::Unavailable("injected fault");
    ASSERT_TRUE(journal.value().Append(failed).ok());
  }
  Result<std::vector<JournalRecord>> loaded = CheckpointJournal::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].key, SampleRecord().key);
  EXPECT_EQ(loaded.value()[1].cell_status.code(), StatusCode::kUnavailable);
}

TEST(CheckpointJournalTest, MissingFileIsNotFound) {
  Result<std::vector<JournalRecord>> loaded =
      CheckpointJournal::Load(TempPath("journal_missing.log"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointJournalTest, TornTrailingRecordIsDroppedNotFatal) {
  std::string path = TempPath("journal_torn.log");
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  std::string good = EncodeJournalRecord(SampleRecord());
  out << good << "\n";
  // Simulate a crash mid-append: half a record, no trailing newline.
  out << good.substr(0, good.size() / 2);
  out.close();
  Result<std::vector<JournalRecord>> loaded = CheckpointJournal::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].key, SampleRecord().key);
}

TEST(CheckpointJournalTest, MidFileCorruptionIsDataLoss) {
  std::string path = TempPath("journal_corrupt.log");
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  std::string good = EncodeJournalRecord(SampleRecord());
  out << good.substr(0, good.size() / 2) << "\n";  // corrupt FIRST line
  out << good << "\n";                             // valid line after it
  out.close();
  Result<std::vector<JournalRecord>> loaded = CheckpointJournal::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointJournalTest, AppendIsResumable) {
  // Re-opening for append keeps earlier records (the resume path).
  std::string path = TempPath("journal_reopen.log");
  std::remove(path.c_str());
  {
    Result<CheckpointJournal> journal = CheckpointJournal::OpenForAppend(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value().Append(SampleRecord()).ok());
  }
  {
    Result<CheckpointJournal> journal = CheckpointJournal::OpenForAppend(path);
    ASSERT_TRUE(journal.ok());
    JournalRecord second = SampleRecord();
    second.key = "second";
    ASSERT_TRUE(journal.value().Append(second).ok());
  }
  Result<std::vector<JournalRecord>> loaded = CheckpointJournal::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].key, "second");
}

}  // namespace
}  // namespace emaf::core
