// Conformance suite for the serve/protocol.h wire format (ISSUE PR-6):
// every frame type round-trips bit-exactly through the pure codec, and a
// byte-surgery battery — bad magic, bad version, truncated header,
// truncated frame, oversized lengths, CRC flip, unknown type, trailing
// bytes — is rejected with the documented StatusCode and a message naming
// the offending field. The incremental FrameDecoder is driven byte by
// byte, in random chunkings, and on garbage streams.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

Frame MakeFrame(FrameType type, uint64_t request_id,
                const std::string& tenant, const std::string& payload) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.tenant_id = tenant;
  frame.payload = payload;
  return frame;
}

// All frame types with representative tenant/payload shapes, including a
// deadline-carrying request (flags byte + deadline field exercised).
std::vector<Frame> AllFrameKinds() {
  Tensor window = Tensor::FromVector(Shape{1, 2, 3},
                                     {0.5, -1.25, 3.0, 0.0, -0.0, 42.0});
  Frame with_deadline = MakeFrame(FrameType::kForecastRequest, 6, "tenant-09",
                                  EncodeTensorPayload(window));
  with_deadline.SetDeadline(12345);
  HealthInfo health;
  health.state = ServeState::kDraining;
  health.resident_models = 3;
  health.known_models = 12;
  health.queue_depth = 7;
  health.max_published_version = 42;
  Tensor row = Tensor::FromVector(Shape{3}, {0.25, -1.5, 1.0 / 3.0});
  return {
      MakeFrame(FrameType::kForecastRequest, 1, "tenant-07",
                EncodeTensorPayload(window)),
      MakeFrame(FrameType::kForecastResponse, 2, "",
                EncodeTensorPayload(window)),
      MakeFrame(FrameType::kError, 3, "",
                EncodeStatusPayload(Status::Unavailable("queue full"))),
      MakeFrame(FrameType::kPing, 4, "", ""),
      MakeFrame(FrameType::kPong, 0xFFFFFFFFFFFFFFFFull, "", ""),
      with_deadline,
      MakeFrame(FrameType::kHealth, 8, "", ""),
      MakeFrame(FrameType::kHealthReply, 8, "", EncodeHealthPayload(health)),
      MakeFrame(FrameType::kAppend, 9, "tenant-07", EncodeTensorPayload(row)),
      MakeFrame(FrameType::kAppendReply, 9, "",
                EncodeAppendReplyPayload(0x0123456789ABCDEFull)),
  };
}

// Re-stamps the trailing CRC after byte surgery so a test can corrupt one
// header field without also tripping the CRC check.
void RestampCrc(std::string* bytes) {
  ASSERT_GE(bytes->size(), kFrameTrailerBytes);
  const uint32_t crc = core::Crc32(
      std::string_view(*bytes).substr(0, bytes->size() - kFrameTrailerBytes));
  std::memcpy(bytes->data() + bytes->size() - kFrameTrailerBytes, &crc, 4);
}

TEST(ProtocolTest, EveryFrameTypeRoundTrips) {
  for (const Frame& frame : AllFrameKinds()) {
    std::string bytes = EncodeFrame(frame);
    EXPECT_EQ(bytes.size(), EncodedFrameBytes(frame));
    Result<Frame> decoded = DecodeFrame(bytes);
    ASSERT_TRUE(decoded.ok())
        << FrameTypeName(frame.type) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), frame) << FrameTypeName(frame.type);
  }
}

TEST(ProtocolTest, TensorPayloadRoundTripsBitwise) {
  // Values chosen so any float32 detour or text formatting would change
  // bits: signed zero, subnormal, huge magnitude, many-digit fraction.
  std::vector<double> values = {-0.0, 5e-324, 1.7976931348623157e308,
                                0.1, -1.0 / 3.0, 123456789.123456789};
  Tensor tensor = Tensor::FromVector(Shape{2, 3}, values);
  Result<Tensor> decoded = DecodeTensorPayload(EncodeTensorPayload(tensor));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().shape().dims(), tensor.shape().dims());
  std::vector<double> round = decoded.value().ToVector();
  ASSERT_EQ(round.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t a = 0, b = 0;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &round[i], 8);
    EXPECT_EQ(a, b) << "element " << i << " changed bits";
  }
}

// The payload itself, not any frame ceiling, bounds the announced shape:
// a tensor larger than kDefaultMaxFrameBytes still decodes when handed to
// the codec directly, so a transport configured with a larger frame
// ceiling never has valid tensors rejected by the payload decoder.
TEST(ProtocolTest, TensorPayloadLargerThanTheDefaultFrameCeilingDecodes) {
  const int64_t elements =
      static_cast<int64_t>(kDefaultMaxFrameBytes / 8) + 16;
  Tensor big = Tensor::FromVector(
      Shape{elements},
      std::vector<double>(static_cast<size_t>(elements), 0.5));
  std::string payload = EncodeTensorPayload(big);
  ASSERT_GT(payload.size(), kDefaultMaxFrameBytes);
  Result<Tensor> decoded = DecodeTensorPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().shape().dims(), big.shape().dims());
}

// Announced dims whose product dwarfs the payload (rank 8, every dim
// 0xFFFFFFFF — a product that would overflow u64 many times over) are
// rejected from the payload size alone, without overflow and without
// allocating.
TEST(ProtocolTest, TensorPayloadDimsOverThePayloadAreRejected) {
  std::string payload(4 + 4 * 8, '\0');
  const uint32_t rank = 8;
  std::memcpy(payload.data(), &rank, 4);
  for (size_t i = 0; i < 8; ++i) {
    const uint32_t dim = 0xFFFFFFFFu;
    std::memcpy(payload.data() + 4 + 4 * i, &dim, 4);
  }
  Result<Tensor> decoded = DecodeTensorPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("payload can hold"),
            std::string::npos);
}

TEST(ProtocolTest, StatusPayloadRoundTrips) {
  Status original = Status::NotFound("no snapshot for tenant x");
  Status decoded = Status::Ok();
  ASSERT_TRUE(DecodeStatusPayload(EncodeStatusPayload(original), &decoded)
                  .ok());
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(ProtocolTest, StatusPayloadRejectsTruncationAndBadCode) {
  Status decoded = Status::Ok();
  Status truncated = DecodeStatusPayload("ab", &decoded);
  EXPECT_EQ(truncated.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(truncated.message().find("status payload truncated"),
            std::string::npos);
  std::string bad_code(4, '\0');
  bad_code[0] = static_cast<char>(99);
  Status rejected = DecodeStatusPayload(bad_code, &decoded);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("invalid status code"),
            std::string::npos);
}

TEST(ProtocolTest, HealthPayloadRoundTripsEveryState) {
  for (ServeState state :
       {ServeState::kStarting, ServeState::kServing, ServeState::kDraining}) {
    HealthInfo info;
    info.state = state;
    info.resident_models = 5;
    info.known_models = 0xFFFFFFFFFFFFFFFFull;
    info.queue_depth = 256;
    Result<HealthInfo> decoded = DecodeHealthPayload(EncodeHealthPayload(info));
    ASSERT_TRUE(decoded.ok())
        << ServeStateName(state) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), info) << ServeStateName(state);
  }
}

TEST(ProtocolTest, HealthPayloadRejectsWrongSizeAndUnknownState) {
  std::string good = EncodeHealthPayload(HealthInfo{});
  Result<HealthInfo> truncated =
      DecodeHealthPayload(std::string_view(good).substr(0, good.size() - 1));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
  Result<HealthInfo> oversized = DecodeHealthPayload(good + "x");
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);
  std::string bad_state = good;
  bad_state[0] = static_cast<char>(9);
  Result<HealthInfo> rejected = DecodeHealthPayload(bad_state);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("state"), std::string::npos)
      << rejected.status().ToString();
}

TEST(ProtocolTest, AppendReplyPayloadRoundTripsAndRejectsWrongSize) {
  for (uint64_t sequence : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                            uint64_t{0xFFFFFFFFFFFFFFFFull}}) {
    Result<uint64_t> decoded =
        DecodeAppendReplyPayload(EncodeAppendReplyPayload(sequence));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), sequence);
  }
  const std::string good = EncodeAppendReplyPayload(7);
  ASSERT_EQ(good.size(), 8u);
  Result<uint64_t> truncated =
      DecodeAppendReplyPayload(std::string_view(good).substr(0, 7));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
  Result<uint64_t> oversized = DecodeAppendReplyPayload(good + "x");
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, HealthPayloadCarriesThePublishedVersionWatermark) {
  HealthInfo info;
  info.state = ServeState::kServing;
  info.max_published_version = 0xFFFFFFFFFFFFFFFFull;
  Result<HealthInfo> decoded = DecodeHealthPayload(EncodeHealthPayload(info));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().max_published_version, 0xFFFFFFFFFFFFFFFFull);
}

// --- Byte-surgery conformance ----------------------------------------------

std::string GoodBytes() {
  return EncodeFrame(MakeFrame(FrameType::kPing, 7, "", ""));
}

TEST(ProtocolConformanceTest, BadMagicNamesTheMagic) {
  std::string bytes = GoodBytes();
  bytes[0] = 'X';
  RestampCrc(&bytes);  // isolate the magic check from the CRC check
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos);
}

TEST(ProtocolConformanceTest, BadVersionNamesBothVersions) {
  std::string bytes = GoodBytes();
  bytes[4] = 9;
  RestampCrc(&bytes);
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("unsupported protocol version 9"),
            std::string::npos);
  EXPECT_NE(decoded.status().message().find("speaks version 2"),
            std::string::npos);
}

// Version negotiation against a *v1* peer: a v1 frame is 20-byte-header
// (24 bytes total for a ping) — shorter than the v2 header — and its CRC
// sits where v2 expects header bytes. The v2 decoder must reject it on
// the version byte, naming both versions, before any completeness or CRC
// logic could misfire on the foreign layout.
TEST(ProtocolConformanceTest, V1FrameIsRejectedOnItsVersionByteBeforeCrc) {
  // Hand-build a v1 ping frame: magic, version=1, type=kPing, tenant len
  // 0, payload len 0, request id, CRC over the 20 header bytes.
  std::string v1;
  v1.append("EMAF", 4);
  v1.push_back(1);  // version 1
  v1.push_back(static_cast<char>(FrameType::kPing));
  v1.append(2, '\0');  // tenant id length
  v1.append(4, '\0');  // payload length
  const uint64_t request_id = 42;
  v1.append(reinterpret_cast<const char*>(&request_id), 8);
  ASSERT_EQ(v1.size(), 20u);  // the v1 header size
  const uint32_t crc = core::Crc32(v1);
  v1.append(reinterpret_cast<const char*>(&crc), 4);

  // One-shot decode: version named, both versions in the message. The
  // 24-byte frame is shorter than the v2 header, so reaching the version
  // check at all proves validation is per-field, not full-header-first.
  Result<Frame> decoded = DecodeFrame(v1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("unsupported protocol version 1"),
            std::string::npos)
      << decoded.status().ToString();
  EXPECT_NE(decoded.status().message().find("speaks version 2"),
            std::string::npos);

  // Streaming decode dies on the same field from the first 5 bytes —
  // before the v1 frame's CRC bytes have even arrived.
  FrameDecoder decoder;
  decoder.Feed(std::string_view(v1).substr(0, 5));
  std::optional<Result<Frame>> got = decoder.Next();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_NE(got->status().message().find("unsupported protocol version 1"),
            std::string::npos);
  EXPECT_NE(got->status().message().find("speaks version 2"),
            std::string::npos);
  EXPECT_TRUE(decoder.failed());
}

TEST(ProtocolConformanceTest, ReservedFlagBitsAreRejectedByName) {
  std::string bytes = GoodBytes();
  bytes[20] = static_cast<char>(0x80 | kFrameFlagHasDeadline);
  RestampCrc(&bytes);
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("reserved flags bits"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(ProtocolConformanceTest, DeadlineWithoutItsFlagIsRejectedByName) {
  std::string bytes = GoodBytes();
  bytes[21] = 5;  // deadline low byte, but the flags byte stays 0
  RestampCrc(&bytes);
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("HAS_DEADLINE"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(ProtocolConformanceTest, UnknownTypeNamesTheType) {
  std::string bytes = GoodBytes();
  bytes[5] = 77;
  RestampCrc(&bytes);
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("unknown frame type 77"),
            std::string::npos);
}

TEST(ProtocolConformanceTest, TruncatedHeaderNamesTheHeader) {
  std::string bytes = GoodBytes();
  for (size_t keep : {size_t{0}, size_t{4}, kFrameHeaderBytes - 1}) {
    Result<Frame> decoded = DecodeFrame(bytes.substr(0, keep));
    ASSERT_FALSE(decoded.ok()) << "kept " << keep;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("truncated header"),
              std::string::npos)
        << decoded.status().ToString();
  }
}

TEST(ProtocolConformanceTest, TruncatedFrameNamesTheAnnouncedLengths) {
  std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kForecastRequest, 1, "t0", "pppp"));
  Result<Frame> decoded = DecodeFrame(bytes.substr(0, bytes.size() - 1));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("truncated frame"),
            std::string::npos);
  EXPECT_NE(decoded.status().message().find("tenant id 2"), std::string::npos);
  EXPECT_NE(decoded.status().message().find("payload 4"), std::string::npos);
}

TEST(ProtocolConformanceTest, OversizedLengthIsRejectedFromTheHeader) {
  // A small decode-side ceiling rejects the frame from the header alone —
  // the announced payload is never buffered or required to be present.
  std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kForecastRequest, 1, "tenant",
                            std::string(512, 'p')));
  Result<Frame> decoded = DecodeFrame(bytes, /*max_frame_bytes=*/128);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("payload length too large"),
            std::string::npos);
  EXPECT_NE(decoded.status().message().find("128-byte ceiling"),
            std::string::npos);
}

TEST(ProtocolConformanceTest, CrcFlipIsDataLossNamingBothCrcs) {
  std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kForecastRequest, 1, "t0", "payload"));
  bytes[kFrameHeaderBytes] ^= 0x40;  // flip a tenant-id bit, keep the CRC
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(decoded.status().message().find("crc mismatch"),
            std::string::npos);
}

TEST(ProtocolConformanceTest, TrailingBytesAreRejected) {
  std::string bytes = GoodBytes() + "x";
  Result<Frame> decoded = DecodeFrame(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("trailing bytes"),
            std::string::npos);
}

// --- FrameDecoder streaming -------------------------------------------------

TEST(FrameDecoderTest, ReassemblesOneByteAtATime) {
  std::vector<Frame> frames = AllFrameKinds();
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);
  FrameDecoder decoder;
  size_t next = 0;
  for (char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    while (std::optional<Result<Frame>> got = decoder.Next()) {
      ASSERT_TRUE(got->ok()) << got->status().ToString();
      ASSERT_LT(next, frames.size());
      EXPECT_EQ(got->value(), frames[next]) << "frame " << next;
      ++next;
    }
  }
  EXPECT_EQ(next, frames.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.failed());
}

TEST(FrameDecoderTest, GarbageStreamFailsFromTheFirstBytes) {
  FrameDecoder decoder;
  decoder.Feed("GET / HTTP/1.1\r\n");
  std::optional<Result<Frame>> got = decoder.Next();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_EQ(got->status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got->status().message().find("bad magic"), std::string::npos);
  EXPECT_TRUE(decoder.failed());
  // Terminal: the same error comes back forever, nothing is buffered.
  decoder.Feed("more bytes");
  std::optional<Result<Frame>> again = decoder.Next();
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->ok());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, OversizedHeaderFailsBeforeThePayloadArrives) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  Frame big = MakeFrame(FrameType::kForecastRequest, 1, "t",
                        std::string(4096, 'p'));
  std::string bytes = EncodeFrame(big);
  // Feed just the header: the announced size alone kills the stream.
  decoder.Feed(std::string_view(bytes).substr(0, kFrameHeaderBytes));
  std::optional<Result<Frame>> got = decoder.Next();
  ASSERT_TRUE(got.has_value());
  ASSERT_FALSE(got->ok());
  EXPECT_NE(got->status().message().find("payload length too large"),
            std::string::npos);
}

TEST(FrameDecoderTest, CrcFailureMidStreamIsTerminal) {
  std::string good = GoodBytes();
  std::string corrupt = good;
  corrupt[12] ^= 0x01;  // request id bit flip; CRC now mismatches
  FrameDecoder decoder;
  decoder.Feed(good);
  decoder.Feed(corrupt);
  decoder.Feed(good);  // never reached: the stream died at frame 2
  std::optional<Result<Frame>> first = decoder.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok());
  std::optional<Result<Frame>> second = decoder.Next();
  ASSERT_TRUE(second.has_value());
  ASSERT_FALSE(second->ok());
  EXPECT_EQ(second->status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameDecoderTest, RandomChunkingNeverChangesTheFrames) {
  std::vector<Frame> frames;
  for (int i = 0; i < 16; ++i) {
    frames.push_back(MakeFrame(FrameType::kForecastRequest,
                               static_cast<uint64_t>(i),
                               "tenant-" + std::to_string(i),
                               std::string(static_cast<size_t>(i) * 7, 'x')));
  }
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);
  Rng rng(20240808);
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    size_t next = 0;
    size_t offset = 0;
    while (offset < stream.size()) {
      size_t chunk = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(stream.size() - offset)));
      decoder.Feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      while (std::optional<Result<Frame>> got = decoder.Next()) {
        ASSERT_TRUE(got->ok()) << got->status().ToString();
        EXPECT_EQ(got->value(), frames[next]);
        ++next;
      }
    }
    EXPECT_EQ(next, frames.size()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace emaf::serve
