#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "models/lstm_forecaster.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace emaf::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(MseBetweenTest, KnownValue) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {1, 4, 3, 0});
  // Errors: 0, 4, 0, 16 -> mean 5.
  EXPECT_DOUBLE_EQ(MseBetween(a, b), 5.0);
  EXPECT_DOUBLE_EQ(MseBetween(a, a), 0.0);
}

TEST(EvaluateMseTest, MatchesManualComputation) {
  Rng rng(1);
  models::LstmConfig config;
  config.hidden_units = 4;
  config.dropout = 0.5;  // must be disabled during eval
  models::LstmForecaster model(3, 2, config, &rng);
  ts::WindowDataset test;
  Rng data_rng(2);
  test.inputs = Tensor::Uniform(Shape{6, 2, 3}, -1, 1, &data_rng);
  test.targets = Tensor::Uniform(Shape{6, 3}, -1, 1, &data_rng);

  double mse = EvaluateMse(&model, test);
  model.SetTraining(false);
  Tensor pred = model.Forward(test.inputs);
  EXPECT_DOUBLE_EQ(mse, MseBetween(pred, test.targets));
}

TEST(EvaluateMseTest, RestoresTrainingFlag) {
  Rng rng(3);
  models::LstmConfig config;
  models::LstmForecaster model(3, 2, config, &rng);
  ts::WindowDataset test;
  test.inputs = Tensor::Zeros(Shape{2, 2, 3});
  test.targets = Tensor::Zeros(Shape{2, 3});
  model.SetTraining(true);
  EvaluateMse(&model, test);
  EXPECT_TRUE(model.training());
  model.SetTraining(false);
  EvaluateMse(&model, test);
  EXPECT_FALSE(model.training());
}

TEST(EvaluateMseTest, DeterministicDespiteDropout) {
  Rng rng(4);
  models::LstmConfig config;
  config.dropout = 0.5;
  models::LstmForecaster model(3, 2, config, &rng);
  ts::WindowDataset test;
  Rng data_rng(5);
  test.inputs = Tensor::Uniform(Shape{4, 2, 3}, -1, 1, &data_rng);
  test.targets = Tensor::Uniform(Shape{4, 3}, -1, 1, &data_rng);
  EXPECT_DOUBLE_EQ(EvaluateMse(&model, test), EvaluateMse(&model, test));
}

TEST(PredictTest, MatchesManualEvalForward) {
  Rng rng(20);
  models::LstmConfig config;
  config.hidden_units = 4;
  config.dropout = 0.5;
  models::LstmForecaster model(3, 2, config, &rng);
  Rng data_rng(21);
  Tensor inputs = Tensor::Uniform(Shape{4, 2, 3}, -1, 1, &data_rng);
  Tensor prediction = Predict(&model, inputs);
  model.SetTraining(false);
  tensor::NoGradGuard guard;
  EXPECT_EQ(prediction.ToVector(), model.Forward(inputs).ToVector());
}

TEST(PredictTest, BuildsNoTape) {
  Rng rng(22);
  models::LstmConfig config;
  config.hidden_units = 4;
  models::LstmForecaster model(3, 2, config, &rng);
  Rng data_rng(23);
  Tensor inputs = Tensor::Uniform(Shape{2, 2, 3}, -1, 1, &data_rng);
  Tensor prediction = Predict(&model, inputs);
  EXPECT_FALSE(prediction.TracksGrad());
  EXPECT_EQ(prediction.impl()->grad_fn, nullptr);
}

TEST(PredictTest, RestoresTrainingModeOnTrainingModel) {
  Rng rng(24);
  models::LstmConfig config;
  models::LstmForecaster model(3, 2, config, &rng);
  model.SetTraining(true);
  Predict(&model, Tensor::Zeros(Shape{2, 2, 3}));
  EXPECT_TRUE(model.training());
}

TEST(PredictTest, NeverWritesAnEvalModeModel) {
  // The serving contract: a model already in eval mode must not have its
  // training flag touched (concurrent requests rely on a write-free
  // forward). Detect writes by checking every submodule stays in eval.
  Rng rng(25);
  models::LstmConfig config;
  config.dropout = 0.5;
  models::LstmForecaster model(3, 2, config, &rng);
  model.SetTraining(false);
  Tensor first = Predict(&model, Tensor::Zeros(Shape{2, 2, 3}));
  EXPECT_FALSE(model.training());
  // And the result is identical across repeated calls (no hidden state,
  // no RNG consumption in eval mode).
  Tensor second = Predict(&model, Tensor::Zeros(Shape{2, 2, 3}));
  EXPECT_EQ(first.ToVector(), second.ToVector());
}

TEST(PerVariableMseTest, DecompositionAveragesToTotal) {
  Rng rng(6);
  models::LstmConfig config;
  config.hidden_units = 4;
  models::LstmForecaster model(4, 2, config, &rng);
  ts::WindowDataset test;
  Rng data_rng(7);
  test.inputs = Tensor::Uniform(Shape{5, 2, 4}, -1, 1, &data_rng);
  test.targets = Tensor::Uniform(Shape{5, 4}, -1, 1, &data_rng);
  std::vector<double> per_variable = EvaluatePerVariableMse(&model, test);
  ASSERT_EQ(per_variable.size(), 4u);
  double mean = 0.0;
  for (double v : per_variable) mean += v;
  mean /= 4.0;
  EXPECT_NEAR(mean, EvaluateMse(&model, test), 1e-12);
}

TEST(AggregateTest, MeanAndStd) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  AggregateStats stats = Aggregate(values);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(stats.count, 4);
}

TEST(AggregateTest, EmptyInput) {
  AggregateStats stats = Aggregate(std::vector<double>{});
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.mean, 0.0);
}

TEST(AggregateTest, SingleValue) {
  AggregateStats stats = Aggregate(std::vector<double>{0.84});
  EXPECT_DOUBLE_EQ(stats.mean, 0.84);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(MseBetweenDeathTest, ShapeMismatch) {
  EXPECT_DEATH(
      MseBetween(Tensor::Zeros(Shape{2}), Tensor::Zeros(Shape{3})), "");
}

}  // namespace
}  // namespace emaf::core
