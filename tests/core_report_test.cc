#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report.h"

namespace emaf::core {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"Model", "Seq1", "Seq5"});
  table.AddRow({"LSTM", "1.027(0.492)", "1.022(0.499)"});
  table.AddRow({"MTGNN_CORR", "0.860(0.428)", "0.840(0.431)"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("Model"), std::string::npos);
  EXPECT_NE(text.find("MTGNN_CORR"), std::string::npos);
  EXPECT_NE(text.find("0.840(0.431)"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RowsAlignAcrossColumns) {
  TablePrinter table({"A", "B"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "2"});
  std::string text = table.ToString();
  std::istringstream stream(text);
  std::string first;
  std::getline(stream, first);
  std::string separator;
  std::getline(stream, separator);
  std::string row;
  std::getline(stream, row);
  EXPECT_EQ(first.size(), row.size());
}

TEST(TablePrinterTest, HighlightMarksColumnMinimum) {
  TablePrinter table({"Model", "MSE"});
  table.AddRow({"LSTM", "1.027(0.492)"});
  table.AddRow({"MTGNN", "0.840(0.431)"});
  table.AddRow({"ASTGCN", "0.883(0.442)"});
  table.HighlightColumnMinima();
  std::string text = table.ToString();
  EXPECT_NE(text.find("0.840(0.431) *"), std::string::npos);
  EXPECT_EQ(text.find("1.027(0.492) *"), std::string::npos);
}

TEST(TablePrinterTest, HighlightSkipsNonNumericCells) {
  TablePrinter table({"Model", "Note"});
  table.AddRow({"A", "n/a"});
  table.AddRow({"B", "n/a"});
  table.HighlightColumnMinima();  // must not crash or mark anything
  EXPECT_EQ(table.ToString().find("*"), std::string::npos);
}

TEST(TablePrinterTest, CsvExport) {
  TablePrinter table({"Model", "MSE"});
  table.AddRow({"LSTM", "1.027"});
  std::string path = std::string(::testing::TempDir()) + "/table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "Model,MSE");
  std::getline(in, line);
  EXPECT_EQ(line, "LSTM,1.027");
}

TEST(TablePrinterDeathTest, RowWidthMustMatchHeader) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only_one"}), "");
}

TEST(FormatMeanStdTest, PaperCellFormat) {
  AggregateStats stats;
  stats.mean = 0.8451;
  stats.stddev = 0.4316;
  EXPECT_EQ(FormatMeanStd(stats), "0.845(0.432)");
  EXPECT_EQ(FormatMeanStd(stats, 2), "0.85(0.43)");
}

}  // namespace
}  // namespace emaf::core
