#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

TEST(AddTest, SameShape) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape{3}, {10, 20, 30});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<double>{11, 22, 33}));
}

TEST(AddTest, BroadcastRow) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3}, {10, 20, 30});
  EXPECT_EQ(Add(a, b).ToVector(),
            (std::vector<double>{11, 22, 33, 14, 25, 36}));
}

TEST(AddTest, BroadcastColumn) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{2, 1}, {10, 100});
  EXPECT_EQ(Add(a, b).ToVector(),
            (std::vector<double>{11, 12, 13, 104, 105, 106}));
}

TEST(AddTest, BroadcastScalarTensor) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor s = Tensor::FromScalar(5);
  EXPECT_EQ(Add(a, s).ToVector(), (std::vector<double>{6, 7}));
}

TEST(SubTest, Values) {
  Tensor a = Tensor::FromVector(Shape{2}, {5, 3});
  Tensor b = Tensor::FromVector(Shape{2}, {1, 7});
  EXPECT_EQ(Sub(a, b).ToVector(), (std::vector<double>{4, -4}));
}

TEST(MulTest, Values) {
  Tensor a = Tensor::FromVector(Shape{2}, {2, -3});
  Tensor b = Tensor::FromVector(Shape{2}, {4, 5});
  EXPECT_EQ(Mul(a, b).ToVector(), (std::vector<double>{8, -15}));
}

TEST(DivTest, Values) {
  Tensor a = Tensor::FromVector(Shape{2}, {8, -9});
  Tensor b = Tensor::FromVector(Shape{2}, {2, 3});
  EXPECT_EQ(Div(a, b).ToVector(), (std::vector<double>{4, -3}));
}

TEST(MaximumMinimumTest, Values) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 5, -2});
  Tensor b = Tensor::FromVector(Shape{3}, {2, 3, -2});
  EXPECT_EQ(Maximum(a, b).ToVector(), (std::vector<double>{2, 5, -2}));
  EXPECT_EQ(Minimum(a, b).ToVector(), (std::vector<double>{1, 3, -2}));
}

TEST(UnaryOpsTest, Values) {
  Tensor x = Tensor::FromVector(Shape{3}, {1.0, -2.0, 0.25});
  EXPECT_EQ(Neg(x).ToVector(), (std::vector<double>{-1, 2, -0.25}));
  EXPECT_EQ(Abs(x).ToVector(), (std::vector<double>{1, 2, 0.25}));
  EXPECT_DOUBLE_EQ(Exp(x).ToVector()[0], std::exp(1.0));
  EXPECT_DOUBLE_EQ(Sqrt(Tensor::FromVector(Shape{1}, {9})).item(), 3.0);
  EXPECT_DOUBLE_EQ(Log(Tensor::FromVector(Shape{1}, {std::exp(2.0)})).item(),
                   2.0);
  EXPECT_DOUBLE_EQ(Pow(Tensor::FromVector(Shape{1}, {3}), 3.0).item(), 27.0);
}

TEST(ClampTest, Values) {
  Tensor x = Tensor::FromVector(Shape{4}, {-2, 0.5, 3, 1});
  EXPECT_EQ(Clamp(x, 0.0, 1.0).ToVector(),
            (std::vector<double>{0, 0.5, 1, 1}));
}

TEST(ScalarOpsTest, OperatorsAndFunctions) {
  Tensor x = Tensor::FromVector(Shape{2}, {1, 2});
  EXPECT_EQ((x + 1.0).ToVector(), (std::vector<double>{2, 3}));
  EXPECT_EQ((1.0 + x).ToVector(), (std::vector<double>{2, 3}));
  EXPECT_EQ((x - 1.0).ToVector(), (std::vector<double>{0, 1}));
  EXPECT_EQ((x * 3.0).ToVector(), (std::vector<double>{3, 6}));
  EXPECT_EQ((x / 2.0).ToVector(), (std::vector<double>{0.5, 1}));
  EXPECT_EQ((-x).ToVector(), (std::vector<double>{-1, -2}));
}

TEST(BroadcastDeathTest, IncompatibleShapes) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  Tensor b = Tensor::Zeros(Shape{2, 4});
  EXPECT_DEATH(Add(a, b), "not broadcastable");
}

// ---- Gradient checks --------------------------------------------------------

struct UnaryGradCase {
  std::string name;
  std::function<Tensor(const Tensor&)> fn;
  double low;
  double high;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryGradCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifferences) {
  const UnaryGradCase& c = GetParam();
  Rng rng(41);
  Tensor x = Tensor::Uniform(Shape{3, 4}, c.low, c.high, &rng);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>& in) { return Sum(c.fn(in[0])); }, {x},
      1e-6, 1e-6);
  EXPECT_TRUE(result.ok) << c.name << " max error " << result.max_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryGradCase{"Neg", [](const Tensor& x) { return Neg(x); }, -2, 2},
        UnaryGradCase{"Exp", [](const Tensor& x) { return Exp(x); }, -1, 1},
        UnaryGradCase{"Log", [](const Tensor& x) { return Log(x); }, 0.5, 3},
        UnaryGradCase{"Sqrt", [](const Tensor& x) { return Sqrt(x); }, 0.5, 4},
        UnaryGradCase{"Abs", [](const Tensor& x) { return Abs(x); }, 0.1, 2},
        UnaryGradCase{"Pow2", [](const Tensor& x) { return Pow(x, 2.0); }, -2,
                      2},
        UnaryGradCase{"PowHalf",
                      [](const Tensor& x) { return Pow(x, 0.5); }, 0.5, 3},
        UnaryGradCase{
            "Clamp",
            // Sample away from the clamp boundaries (non-differentiable
            // kinks break finite differences).
            [](const Tensor& x) { return Clamp(x, -0.95, 0.95); }, -0.8, 0.8},
        UnaryGradCase{"AddScalar",
                      [](const Tensor& x) { return AddScalar(x, 3.0); }, -2,
                      2},
        UnaryGradCase{"MulScalar",
                      [](const Tensor& x) { return MulScalar(x, -1.5); }, -2,
                      2}),
    [](const ::testing::TestParamInfo<UnaryGradCase>& info) {
      return info.param.name;
    });

struct BinaryGradCase {
  std::string name;
  std::function<Tensor(const Tensor&, const Tensor&)> fn;
  Shape a_shape;
  Shape b_shape;
};

class BinaryGradTest : public ::testing::TestWithParam<BinaryGradCase> {};

TEST_P(BinaryGradTest, MatchesFiniteDifferences) {
  const BinaryGradCase& c = GetParam();
  Rng rng(43);
  Tensor a = Tensor::Uniform(c.a_shape, 0.5, 2.0, &rng);
  Tensor b = Tensor::Uniform(c.b_shape, 0.5, 2.0, &rng);
  GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>& in) { return Sum(c.fn(in[0], in[1])); },
      {a, b}, 1e-6, 1e-6);
  EXPECT_TRUE(result.ok) << c.name << " max error " << result.max_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, BinaryGradTest,
    ::testing::Values(
        BinaryGradCase{"Add", [](const Tensor& a, const Tensor& b) { return Add(a, b); },
                       Shape{2, 3}, Shape{2, 3}},
        BinaryGradCase{"AddBroadcastRow",
                       [](const Tensor& a, const Tensor& b) { return Add(a, b); },
                       Shape{2, 3}, Shape{3}},
        BinaryGradCase{"AddBroadcastCol",
                       [](const Tensor& a, const Tensor& b) { return Add(a, b); },
                       Shape{2, 1}, Shape{2, 3}},
        BinaryGradCase{"Sub", [](const Tensor& a, const Tensor& b) { return Sub(a, b); },
                       Shape{2, 3}, Shape{2, 3}},
        BinaryGradCase{"SubBroadcast",
                       [](const Tensor& a, const Tensor& b) { return Sub(a, b); },
                       Shape{4}, Shape{2, 4}},
        BinaryGradCase{"Mul", [](const Tensor& a, const Tensor& b) { return Mul(a, b); },
                       Shape{2, 3}, Shape{2, 3}},
        BinaryGradCase{"MulBroadcast",
                       [](const Tensor& a, const Tensor& b) { return Mul(a, b); },
                       Shape{2, 3}, Shape{1, 3}},
        BinaryGradCase{"Div", [](const Tensor& a, const Tensor& b) { return Div(a, b); },
                       Shape{2, 3}, Shape{2, 3}},
        BinaryGradCase{"DivBroadcast",
                       [](const Tensor& a, const Tensor& b) { return Div(a, b); },
                       Shape{3}, Shape{2, 3}},
        BinaryGradCase{"MulScalarTensorBroadcast",
                       [](const Tensor& a, const Tensor& b) { return Mul(a, b); },
                       Shape{}, Shape{2, 3}}),
    [](const ::testing::TestParamInfo<BinaryGradCase>& info) {
      return info.param.name;
    });

TEST(MaximumGradTest, RoutesGradientToLarger) {
  Tensor a = Tensor::FromVector(Shape{2}, {1.0, 5.0}).SetRequiresGrad(true);
  Tensor b = Tensor::FromVector(Shape{2}, {2.0, 3.0}).SetRequiresGrad(true);
  Sum(Maximum(a, b)).Backward();
  EXPECT_EQ(a.grad().ToVector(), (std::vector<double>{0, 1}));
  EXPECT_EQ(b.grad().ToVector(), (std::vector<double>{1, 0}));
}

TEST(MinimumGradTest, RoutesGradientToSmaller) {
  Tensor a = Tensor::FromVector(Shape{2}, {1.0, 5.0}).SetRequiresGrad(true);
  Tensor b = Tensor::FromVector(Shape{2}, {2.0, 3.0}).SetRequiresGrad(true);
  Sum(Minimum(a, b)).Backward();
  EXPECT_EQ(a.grad().ToVector(), (std::vector<double>{1, 0}));
  EXPECT_EQ(b.grad().ToVector(), (std::vector<double>{0, 1}));
}

}  // namespace
}  // namespace emaf::tensor
