// ThreadPool unit tests: task completion, exact ParallelFor coverage,
// nested-submit safety, exception propagation, clean drain on destruction.

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace emaf::common {
namespace {

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int64_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int64_t size : {1, 5, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(size));
        for (auto& h : hits) h = 0;
        pool.ParallelFor(0, size, grain, [&](int64_t lo, int64_t hi) {
          EXPECT_LT(lo, hi);
          EXPECT_LE(hi - lo, grain);
          for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
        });
        for (int64_t i = 0; i < size; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " size=" << size
              << " grain=" << grain << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBeginCoversRange) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(10, 110, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) total += i;
  });
  EXPECT_EQ(total.load(), (10 + 109) * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, 1, [](int64_t, int64_t) { FAIL(); });
  pool.ParallelFor(7, 3, 1, [](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, NestedSubmitFromTaskIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
       std::vector<std::future<void>> inner;
       for (int i = 0; i < 8; ++i) {
         inner.push_back(pool.Submit([&counter] { ++counter; }));
       }
       for (std::future<void>& f : inner) f.get();
     })
      .get();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Inside a worker this must not re-enter the queue (deadlock);
      // InWorker() is true for pool threads, false for the caller thread
      // participating in the outer loop.
      pool.ParallelFor(0, 4, 1, [&](int64_t ilo, int64_t ihi) {
        total += ihi - ilo;
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForExceptionPropagatesToCaller) {
  for (int64_t threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 100, 1,
                         [](int64_t lo, int64_t) {
                           if (lo == 37) throw std::runtime_error("chunk boom");
                         }),
        std::runtime_error);
    // Pool still usable afterwards.
    std::atomic<int64_t> covered{0};
    pool.ParallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
      covered += hi - lo;
    });
    EXPECT_EQ(covered.load(), 10);
  }
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++completed;
      });
    }
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, GlobalPoolIsResizable) {
  ThreadPool::SetGlobalNumThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

// Fault-injection coverage: the "threadpool.task" site throws inside a
// worker; the pool must surface it at the ParallelFor call site, leave
// every other chunk's writes intact, and stay usable afterwards.
class ThreadPoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFaultInjectionEnabled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
    ASSERT_TRUE(fault::Configure("", 0).ok());
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      ASSERT_TRUE(fault::Configure("", 0).ok());
    }
  }
};

TEST_F(ThreadPoolFaultTest, InjectedTaskFaultPropagatesFromParallelFor) {
  for (int64_t threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ASSERT_TRUE(fault::Configure("threadpool.task=1:1", 0).ok());
    std::vector<int64_t> slots(64, 0);
    try {
      pool.ParallelFor(0, 64, 8, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) slots[static_cast<size_t>(i)] = 1;
      });
      FAIL() << "injected fault did not propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "injected fault: threadpool.task");
    }
    // The fault fires before a chunk's body, and later chunks are
    // skipped once a failure is recorded — so completed chunks wrote
    // fully (multiples of the grain) and at least the faulted one wrote
    // nothing. No torn chunk writes either way.
    int64_t written = 0;
    for (int64_t s : slots) written += s;
    EXPECT_LE(written, 64 - 8);
    EXPECT_EQ(written % 8, 0) << "chunk writes must be all-or-nothing";

    // The pool survives: with injection cleared the same loop covers
    // every index (no dead workers, no stuck queue).
    ASSERT_TRUE(fault::Configure("", 0).ok());
    std::atomic<int64_t> covered{0};
    pool.ParallelFor(0, 64, 8, [&](int64_t lo, int64_t hi) {
      covered += hi - lo;
    });
    EXPECT_EQ(covered.load(), 64);
  }
}

TEST_F(ThreadPoolFaultTest, ProbabilisticFaultsEventuallyExhaustTriggers) {
  // A bounded spec (p=0.5, max 2 triggers) throws at most twice across
  // repeated loops, then the pool runs clean forever after.
  ThreadPool pool(2);
  ASSERT_TRUE(fault::Configure("threadpool.task=0.5:2", 11).ok());
  int64_t throws = 0;
  for (int round = 0; round < 32; ++round) {
    try {
      pool.ParallelFor(0, 16, 4, [](int64_t, int64_t) {});
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  EXPECT_GE(throws, 1);
  EXPECT_LE(throws, 2);
  ASSERT_TRUE(fault::Configure("", 0).ok());
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 16, 4, [&](int64_t lo, int64_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 16);
}

}  // namespace
}  // namespace emaf::common
