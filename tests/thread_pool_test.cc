// ThreadPool unit tests: task completion, exact ParallelFor coverage,
// nested-submit safety, exception propagation, clean drain on destruction.

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace emaf::common {
namespace {

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int64_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int64_t size : {1, 5, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(size));
        for (auto& h : hits) h = 0;
        pool.ParallelFor(0, size, grain, [&](int64_t lo, int64_t hi) {
          EXPECT_LT(lo, hi);
          EXPECT_LE(hi - lo, grain);
          for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
        });
        for (int64_t i = 0; i < size; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " size=" << size
              << " grain=" << grain << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBeginCoversRange) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(10, 110, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) total += i;
  });
  EXPECT_EQ(total.load(), (10 + 109) * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, 1, [](int64_t, int64_t) { FAIL(); });
  pool.ParallelFor(7, 3, 1, [](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, NestedSubmitFromTaskIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
       std::vector<std::future<void>> inner;
       for (int i = 0; i < 8; ++i) {
         inner.push_back(pool.Submit([&counter] { ++counter; }));
       }
       for (std::future<void>& f : inner) f.get();
     })
      .get();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Inside a worker this must not re-enter the queue (deadlock);
      // InWorker() is true for pool threads, false for the caller thread
      // participating in the outer loop.
      pool.ParallelFor(0, 4, 1, [&](int64_t ilo, int64_t ihi) {
        total += ihi - ilo;
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForExceptionPropagatesToCaller) {
  for (int64_t threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 100, 1,
                         [](int64_t lo, int64_t) {
                           if (lo == 37) throw std::runtime_error("chunk boom");
                         }),
        std::runtime_error);
    // Pool still usable afterwards.
    std::atomic<int64_t> covered{0};
    pool.ParallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
      covered += hi - lo;
    });
    EXPECT_EQ(covered.load(), 10);
  }
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++completed;
      });
    }
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, GlobalPoolIsResizable) {
  ThreadPool::SetGlobalNumThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace emaf::common
