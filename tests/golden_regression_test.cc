// Golden numerics gate: a tiny seeded 2-individual x 2-model experiment
// grid whose report CSV must match tests/golden/experiment_small.csv
// BYTE FOR BYTE. Any PR that changes these bytes has changed the
// numerics — deliberately or not — and must regenerate the golden file
// and justify the diff in review. Perf work (kernel re-blocking, new
// thread-pool schedules) and observability work (metrics ON/OFF,
// EMAF_TRACE_FILE) must leave it untouched; the grid is run at 1, 2, and
// 8 threads against the same file to hold the determinism contract too.
//
// Updating the golden file after an intentional numerics change:
//   ./golden_regression_test --update-golden
// or
//   EMAF_UPDATE_GOLDEN=1 ./golden_regression_test
// then commit the rewritten tests/golden/experiment_small.csv. The
// update path runs at 1 thread and still fails if the other thread
// counts disagree with the refreshed file.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/report.h"
#include "data/generator.h"

namespace emaf {

bool update_golden = false;  // set by main() below

namespace {

#ifndef EMAF_GOLDEN_DIR
#error "tests/CMakeLists.txt must define EMAF_GOLDEN_DIR"
#endif

std::string GoldenPath() {
  return std::string(EMAF_GOLDEN_DIR) + "/experiment_small.csv";
}

// Round-trip exact formatting: 17 significant digits distinguish every
// double, so a 1-ulp numerics change flips the golden bytes.
std::string FormatExact(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

core::ExperimentConfig GoldenConfig() {
  core::ExperimentConfig config;
  config.generator.num_individuals = 2;
  config.generator.num_variables = 8;
  config.generator.days = 7;
  config.generator.seed = 20240612;
  config.train.epochs = 3;
  // The golden numerics were frozen when training always clipped at norm
  // 5; the library default is now unclipped (paper-faithful), so the
  // golden grid pins the original value to keep the bytes stable.
  config.train.grad_clip_norm = 5.0;
  config.knn_k = 3;
  config.seed = 20240612;
  return config;
}

// LSTM (graph-free baseline) and A3TGCN over the Pearson graph: one
// non-graph and one graph model so both training paths stay pinned.
std::vector<core::CellSpec> GoldenGrid() {
  std::vector<core::CellSpec> grid;
  core::CellSpec lstm;
  lstm.model = core::ModelKind::kLstm;
  lstm.input_length = 2;
  grid.push_back(lstm);
  core::CellSpec a3tgcn;
  a3tgcn.model = core::ModelKind::kA3tgcn;
  a3tgcn.metric = graph::GraphMetric::kCorrelation;
  a3tgcn.gdt = 0.4;
  a3tgcn.input_length = 2;
  grid.push_back(a3tgcn);
  return grid;
}

// The full report CSV for the golden grid, as written by TablePrinter.
std::string RunGridCsv(int64_t threads) {
  common::ThreadPool::SetGlobalNumThreads(threads);
  core::ExperimentConfig config = GoldenConfig();
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(std::move(cohort), config);

  core::TablePrinter table(
      {"cell", "mean_mse(std)", "mse_individual_0", "mse_individual_1"});
  for (const core::CellSpec& spec : GoldenGrid()) {
    core::CellResult result = runner.RunCellOrDie(spec);
    EXPECT_EQ(result.per_individual_mse.size(), 2u);
    table.AddRow({StrCat(spec.Label(), "_seq", spec.input_length),
                  core::FormatMeanStd(result.stats),
                  FormatExact(result.per_individual_mse[0]),
                  FormatExact(result.per_individual_mse[1])});
  }
  common::ThreadPool::SetGlobalNumThreads(1);

  std::string path =
      std::string(::testing::TempDir()) + "/golden_candidate.csv";
  EXPECT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open());
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string ReadGolden() {
  std::ifstream in(GoldenPath(), std::ios::binary);
  EXPECT_TRUE(in.is_open())
      << GoldenPath()
      << " missing — run ./golden_regression_test --update-golden once and "
         "commit the file";
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TEST(GoldenRegressionTest, ReportCsvMatchesGoldenAtOneTwoEightThreads) {
  std::string serial = RunGridCsv(1);
  if (update_golden) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath();
    out << serial;
    ASSERT_TRUE(out.good());
    std::cout << "[golden] rewrote " << GoldenPath() << "\n";
  }
  std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty());
  // Byte-for-byte: EXPECT_EQ on the full strings shows the first diff.
  EXPECT_EQ(serial, golden) << "serial run diverged from golden CSV";
  for (int64_t threads : {2, 8}) {
    EXPECT_EQ(RunGridCsv(threads), golden)
        << "threads=" << threads << " diverged from golden CSV";
  }
}

}  // namespace
}  // namespace emaf

// Custom main so --update-golden can be passed alongside gtest flags
// (gtest_main would reject nothing, but we need to see the flag).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      emaf::update_golden = true;
    }
  }
  const char* env = std::getenv("EMAF_UPDATE_GOLDEN");
  if (env != nullptr && std::string(env) == "1") emaf::update_golden = true;
  return RUN_ALL_TESTS();
}
