#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(InitTest, XavierUniformBounds) {
  Rng rng(1);
  Tensor t = XavierUniform(Shape{100, 100}, 100, 100, &rng);
  double bound = std::sqrt(6.0 / 200.0);
  for (double v : t.ToVector()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, KaimingUniformBounds) {
  Rng rng(2);
  Tensor t = KaimingUniform(Shape{50, 50}, 50, &rng);
  double bound = std::sqrt(6.0 / 50.0);
  for (double v : t.ToVector()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, FanInUniformBounds) {
  Rng rng(3);
  Tensor t = FanInUniform(Shape{64}, 16, &rng);
  for (double v : t.ToVector()) {
    EXPECT_GE(v, -0.25);
    EXPECT_LE(v, 0.25);
  }
}

TEST(LinearTest, OutputShape) {
  Rng rng(4);
  Linear layer(5, 3, /*bias=*/true, &rng);
  Tensor x = Tensor::Zeros(Shape{7, 5});
  EXPECT_EQ(layer.Forward(x).shape(), (Shape{7, 3}));
  Tensor batched = Tensor::Zeros(Shape{2, 7, 5});
  EXPECT_EQ(layer.Forward(batched).shape(), (Shape{2, 7, 3}));
}

TEST(LinearTest, ComputesAffineMap) {
  Rng rng(5);
  Linear layer(2, 1, /*bias=*/true, &rng);
  layer.weight()->data()[0] = 2.0;
  layer.weight()->data()[1] = -1.0;
  layer.bias()->data()[0] = 0.5;
  Tensor x = Tensor::FromVector(Shape{1, 2}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(layer.Forward(x).item(), 2.0 * 3 - 1.0 * 4 + 0.5);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(6);
  Linear layer(2, 2, /*bias=*/false, &rng);
  EXPECT_EQ(layer.bias(), nullptr);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(7);
  Linear layer(3, 2, /*bias=*/true, &rng);
  Tensor x = Tensor::Ones(Shape{4, 3});
  tensor::Sum(layer.Forward(x)).Backward();
  EXPECT_TRUE(layer.weight()->grad().defined());
  EXPECT_TRUE(layer.bias()->grad().defined());
  // d(sum)/d(bias_j) = batch size.
  for (double v : layer.bias()->grad().ToVector()) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(LinearDeathTest, WrongInputWidth) {
  Rng rng(8);
  Linear layer(3, 2, true, &rng);
  EXPECT_DEATH(layer.Forward(Tensor::Zeros(Shape{4, 5})), "");
}

TEST(DropoutModuleTest, EvalIsIdentityTrainDrops) {
  Rng rng(9);
  Dropout dropout(0.5, &rng);
  Tensor x = Tensor::Ones(Shape{1000});
  dropout.SetTraining(false);
  EXPECT_EQ(dropout.Forward(x).ToVector(), x.ToVector());
  dropout.SetTraining(true);
  Tensor y = dropout.Forward(x);
  int64_t zeros = 0;
  for (double v : y.ToVector()) {
    if (v == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 300);
  EXPECT_LT(zeros, 700);
}

TEST(DropoutModuleTest, HasNoParameters) {
  Rng rng(10);
  Dropout dropout(0.3, &rng);
  EXPECT_EQ(dropout.ParameterCount(), 0);
}

TEST(DropoutModuleTest, EvalModeIsBitwisePassThrough) {
  Rng rng(15);
  Dropout dropout(0.5, &rng);
  dropout.SetTraining(false);
  Rng data_rng(16);
  Tensor x = Tensor::Uniform(Shape{4, 6}, -1, 1, &data_rng);
  Tensor out = dropout.Forward(x);
  // Exact identity, not an equal copy: eval dropout returns the input
  // tensor itself, so the serving path spends no copy and no allocation.
  EXPECT_EQ(out.impl(), x.impl());
  EXPECT_EQ(out.data(), x.data());
}

TEST(DropoutModuleTest, EvalModeDrawsNothingFromTheRngStream) {
  Rng rng_a(17);
  Rng rng_b(17);
  Dropout exercised(0.5, &rng_a);
  Dropout fresh(0.5, &rng_b);
  Rng data_rng(18);
  Tensor x = Tensor::Uniform(Shape{8, 8}, -1, 1, &data_rng);
  exercised.SetTraining(false);
  for (int i = 0; i < 5; ++i) exercised.Forward(x);
  exercised.SetTraining(true);
  fresh.SetTraining(true);
  // Had any eval forward consumed a Bernoulli draw, the first training
  // masks of the two (identically seeded) layers would diverge.
  EXPECT_EQ(exercised.Forward(x).ToVector(), fresh.Forward(x).ToVector());
}

TEST(LayerNormTest, NormalizesLastAxis) {
  LayerNorm ln({4});
  Tensor x = Tensor::FromVector(Shape{2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = ln.Forward(x);
  for (int64_t r = 0; r < 2; ++r) {
    double mean = 0.0;
    for (int64_t c = 0; c < 4; ++c) mean += y.At({r, c});
    mean /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    double var = 0.0;
    for (int64_t c = 0; c < 4; ++c) var += y.At({r, c}) * y.At({r, c});
    var /= 4.0;
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GainAndBiasApply) {
  LayerNorm ln({2});
  std::vector<NamedParameter> params = ln.NamedParameters();
  ASSERT_EQ(params.size(), 2u);
  // gain = 2, bias = 1 -> outputs are 2 * normalized + 1.
  params[0].value->Fill(2.0);
  params[1].value->Fill(1.0);
  Tensor x = Tensor::FromVector(Shape{1, 2}, {-1, 1});
  std::vector<double> y = ln.Forward(x).ToVector();
  EXPECT_NEAR(y[0], 2.0 * -1.0 + 1.0, 1e-3);
  EXPECT_NEAR(y[1], 2.0 * 1.0 + 1.0, 1e-3);
}

TEST(LayerNormTest, MultiAxisNormalization) {
  LayerNorm ln({2, 3});
  Tensor x = Tensor::FromVector(Shape{2, 2, 3},
                                {1, 2, 3, 4, 5, 6, -1, -2, -3, -4, -5, -6});
  Tensor y = ln.Forward(x);
  for (int64_t b = 0; b < 2; ++b) {
    double mean = 0.0;
    for (int64_t i = 0; i < 2; ++i) {
      for (int64_t j = 0; j < 3; ++j) mean += y.At({b, i, j});
    }
    EXPECT_NEAR(mean / 6.0, 0.0, 1e-9);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(11);
  LayerNorm ln({3});
  Tensor x = Tensor::Uniform(Shape{2, 3}, -1, 1, &rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor y = ln.Forward(in[0]);
        return tensor::Sum(tensor::Mul(y, y));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(Conv2dLayerTest, ShapeAndParameterCount) {
  Rng rng(12);
  tensor::Conv2dOptions options;
  Conv2dLayer conv(3, 8, 1, 2, options, /*bias=*/true, &rng);
  EXPECT_EQ(conv.ParameterCount(), 8 * 3 * 1 * 2 + 8);
  Tensor x = Tensor::Zeros(Shape{2, 3, 5, 7});
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 8, 5, 6}));
}

TEST(Conv2dLayerTest, PaddingPreservesWidth) {
  Rng rng(13);
  tensor::Conv2dOptions options;
  options.pad_w = 1;
  Conv2dLayer conv(2, 2, 1, 3, options, true, &rng);
  Tensor x = Tensor::Zeros(Shape{1, 2, 4, 6});
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{1, 2, 4, 6}));
}

TEST(Conv2dLayerDeathTest, ChannelMismatch) {
  Rng rng(14);
  Conv2dLayer conv(3, 2, 1, 1, {}, true, &rng);
  EXPECT_DEATH(conv.Forward(Tensor::Zeros(Shape{1, 4, 2, 2})), "");
}

}  // namespace
}  // namespace emaf::nn
