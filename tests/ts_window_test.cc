#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "ts/normalize.h"
#include "ts/window.h"

namespace emaf::ts {
namespace {

using tensor::Shape;
using tensor::Tensor;

// data[t][v] = 10 t + v so every window element is identifiable.
Tensor GridData(int64_t rows, int64_t cols) {
  Tensor data = Tensor::Zeros(Shape{rows, cols});
  double* d = data.data();
  for (int64_t t = 0; t < rows; ++t) {
    for (int64_t v = 0; v < cols; ++v) {
      d[t * cols + v] = 10.0 * static_cast<double>(t) + static_cast<double>(v);
    }
  }
  return data;
}

TEST(BuildWindowsTest, CountsWithoutContext) {
  Tensor data = GridData(10, 3);
  WindowDataset ds = BuildWindows(data, 2, 0, 10, /*allow_context=*/false);
  // Targets at rows 2..9 -> 8 windows.
  EXPECT_EQ(ds.num_windows(), 8);
  EXPECT_EQ(ds.inputs.shape(), (Shape{8, 2, 3}));
  EXPECT_EQ(ds.targets.shape(), (Shape{8, 3}));
}

TEST(BuildWindowsTest, InputPrecedesTarget) {
  Tensor data = GridData(10, 2);
  WindowDataset ds = BuildWindows(data, 3, 0, 10, false);
  // First window: inputs rows 0,1,2 -> target row 3.
  EXPECT_DOUBLE_EQ(ds.inputs.At({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ds.inputs.At({0, 2, 1}), 21.0);
  EXPECT_DOUBLE_EQ(ds.targets.At({0, 0}), 30.0);
  // Last window: target row 9.
  EXPECT_DOUBLE_EQ(ds.targets.At({ds.num_windows() - 1, 0}), 90.0);
}

TEST(BuildWindowsTest, ContextReachesBeforeStart) {
  Tensor data = GridData(10, 2);
  // Test region rows [6, 10): with context every test row is a target.
  WindowDataset ds = BuildWindows(data, 3, 6, 10, /*allow_context=*/true);
  EXPECT_EQ(ds.num_windows(), 4);
  // First target is row 6; its first input row is 3 (inside train region).
  EXPECT_DOUBLE_EQ(ds.targets.At({0, 0}), 60.0);
  EXPECT_DOUBLE_EQ(ds.inputs.At({0, 0, 0}), 30.0);
}

TEST(BuildWindowsTest, WithoutContextTestTargetsShift) {
  Tensor data = GridData(10, 2);
  WindowDataset ds = BuildWindows(data, 3, 6, 10, /*allow_context=*/false);
  EXPECT_EQ(ds.num_windows(), 1);  // only row 9 has full in-region history
  EXPECT_DOUBLE_EQ(ds.targets.At({0, 0}), 90.0);
}

TEST(BuildWindowsTest, ContextClampsAtSeriesStart) {
  Tensor data = GridData(10, 2);
  // Even with context, a target needs `input_length` rows of history.
  WindowDataset ds = BuildWindows(data, 4, 0, 10, /*allow_context=*/true);
  EXPECT_EQ(ds.num_windows(), 6);
  EXPECT_DOUBLE_EQ(ds.targets.At({0, 0}), 40.0);
}

TEST(BuildWindowsTest, EmptyWhenRegionTooSmall) {
  Tensor data = GridData(5, 2);
  WindowDataset ds = BuildWindows(data, 5, 0, 5, false);
  EXPECT_EQ(ds.num_windows(), 0);
  EXPECT_FALSE(ds.inputs.defined());
}

TEST(BuildWindowsTest, SeqOneUsesSinglePreviousRow) {
  Tensor data = GridData(4, 2);
  WindowDataset ds = BuildWindows(data, 1, 0, 4, false);
  EXPECT_EQ(ds.num_windows(), 3);
  EXPECT_DOUBLE_EQ(ds.inputs.At({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ds.targets.At({0, 0}), 10.0);
}

TEST(SequentialSplitTest, SeventyThirty) {
  EXPECT_EQ(SequentialSplitIndex(100, 0.7), 70);
  EXPECT_EQ(SequentialSplitIndex(140, 0.7), 98);
  EXPECT_EQ(SequentialSplitIndex(10, 0.7), 7);
}

TEST(SequentialSplitTest, NeverEmptySides) {
  EXPECT_EQ(SequentialSplitIndex(2, 0.01), 1);
  EXPECT_EQ(SequentialSplitIndex(2, 0.99), 1);
  EXPECT_EQ(SequentialSplitIndex(3, 0.95), 2);
}

TEST(ZScoreTest, ColumnsBecomeStandardized) {
  Tensor data = GridData(50, 3);
  NormalizationStats stats = ZScoreColumns(&data);
  const double* d = data.data();
  for (int64_t v = 0; v < 3; ++v) {
    double mean = 0.0;
    for (int64_t t = 0; t < 50; ++t) mean += d[t * 3 + v];
    mean /= 50.0;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    double var = 0.0;
    for (int64_t t = 0; t < 50; ++t) {
      var += d[t * 3 + v] * d[t * 3 + v];
    }
    EXPECT_NEAR(var / 50.0, 1.0, 1e-10);
  }
  EXPECT_EQ(stats.mean.size(), 3u);
}

TEST(ZScoreTest, ConstantColumnCentredNotScaled) {
  Tensor data = Tensor::Full(Shape{10, 1}, 4.0);
  NormalizationStats stats = ZScoreColumns(&data);
  for (double v : data.ToVector()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev[0], 1.0);
}

TEST(ZScoreTest, InverseRestoresOriginal) {
  Tensor data = GridData(20, 2);
  Tensor original = data.Clone();
  NormalizationStats stats = ZScoreColumns(&data);
  InverseZScoreColumns(&data, stats);
  for (int64_t i = 0; i < data.NumElements(); ++i) {
    EXPECT_NEAR(data.data()[i], original.data()[i], 1e-10);
  }
}

TEST(SlidingBufferTest, FillsThenOverwritesOldestFirst) {
  SlidingBuffer buffer(3, 2);
  EXPECT_EQ(buffer.size(), 0);
  buffer.Push(std::vector<double>{0.0, 1.0});
  buffer.Push(std::vector<double>{10.0, 11.0});
  EXPECT_EQ(buffer.size(), 2);
  EXPECT_EQ(buffer.ToTensor().shape(), (Shape{2, 2}));
  EXPECT_EQ(buffer.ToTensor().ToVector(),
            (std::vector<double>{0.0, 1.0, 10.0, 11.0}));
  buffer.Push(std::vector<double>{20.0, 21.0});
  buffer.Push(std::vector<double>{30.0, 31.0});  // evicts row 0
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_EQ(buffer.total_pushed(), 4);
  EXPECT_EQ(buffer.ToTensor().ToVector(),
            (std::vector<double>{10.0, 11.0, 20.0, 21.0, 30.0, 31.0}));
}

TEST(SlidingBufferTest, MatchesTheTailOfTheFullMatrix) {
  // After pushing all T rows of a matrix, the buffer is exactly the last
  // min(T, capacity) rows — the contract the online pipeline windows the
  // observation log through.
  Tensor data = GridData(10, 3);
  SlidingBuffer buffer(4, 3);
  for (int64_t t = 0; t < 10; ++t) {
    buffer.Push(std::span<const double>(data.data() + t * 3, 3));
  }
  Tensor windowed = buffer.ToTensor();
  ASSERT_EQ(windowed.shape(), (Shape{4, 3}));
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t v = 0; v < 3; ++v) {
      EXPECT_EQ(windowed.data()[t * 3 + v], data.data()[(6 + t) * 3 + v]);
    }
  }
}

}  // namespace
}  // namespace emaf::ts
