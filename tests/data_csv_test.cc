#include <cmath>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/csv.h"
#include "data/ema_items.h"
#include "data/generator.h"

namespace emaf::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvTest, MatrixRoundTripWithHeader) {
  Tensor m = Tensor::FromVector(Shape{2, 3}, {1.5, -2, 3, 0.25, 5, -6});
  std::string path = TempPath("matrix.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, {"a", "b", "c"}, path).ok());

  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().shape(), (Shape{2, 3}));
  EXPECT_EQ(loaded.value().ToVector(), m.ToVector());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, MatrixRoundTripWithoutHeader) {
  Tensor m = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  std::string path = TempPath("matrix_nohdr.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, {}, path).ok());
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().ToVector(), m.ToVector());
}

TEST(CsvTest, HighPrecisionSurvivesRoundTrip) {
  Tensor m = Tensor::FromVector(Shape{1, 2}, {1.0 / 3.0, 2.0 / 7.0});
  std::string path = TempPath("precision.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, {}, path).ok());
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value().data()[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded.value().data()[1], 2.0 / 7.0);
}

TEST(CsvTest, MissingFileReturnsNotFound) {
  Result<Tensor> loaded = LoadMatrixCsv(TempPath("nope.csv"), nullptr);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, RaggedRowsRejected) {
  std::string path = TempPath("ragged.csv");
  std::ofstream out(path);
  out << "1,2,3\n4,5\n";
  out.close();
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  EXPECT_FALSE(loaded.ok());
  // Structural corruption (not a bad value): kDataLoss, with the
  // offending physical line in the message.
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos)
      << loaded.status().message();
}

TEST(CsvTest, NonNumericCellRejected) {
  std::string path = TempPath("text.csv");
  std::ofstream out(path);
  out << "1,2\n3,oops\n";
  out.close();
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // Error context is file:line:column (both 1-based) plus the bad value.
  EXPECT_NE(loaded.status().message().find(StrCat(path, ":2:2:")),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("'oops'"), std::string::npos);
}

TEST(CsvTest, NonNumericCellAfterHeaderCountsPhysicalLines) {
  // Line numbers in errors are physical file lines: with a header on line
  // 1 and a blank line 3, the bad cell on line 4 reports ":4:1:".
  std::string path = TempPath("text_header.csv");
  std::ofstream out(path);
  out << "a,b\n1,2\n\nbad,4\n";
  out.close();
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":4:1:"), std::string::npos)
      << loaded.status().message();
}

TEST(CsvTest, EmptyFileRejected) {
  std::string path = TempPath("empty.csv");
  std::ofstream out(path);
  out.close();
  EXPECT_FALSE(LoadMatrixCsv(path, nullptr).ok());
}

TEST(CsvTest, BlankLinesSkipped) {
  std::string path = TempPath("blanks.csv");
  std::ofstream out(path);
  out << "1,2\n\n3,4\n\n";
  out.close();
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().shape(), (Shape{2, 2}));
}

TEST(CsvTest, AdjacencyRoundTrip) {
  graph::AdjacencyMatrix adj(3);
  adj.set(0, 1, 0.5);
  adj.set(1, 0, 0.5);
  adj.set(2, 0, 0.125);
  std::string path = TempPath("adjacency.csv");
  ASSERT_TRUE(SaveAdjacencyCsv(adj, path).ok());
  Result<graph::AdjacencyMatrix> loaded = LoadAdjacencyCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), adj);
}

TEST(CsvTest, NonSquareAdjacencyRejected) {
  std::string path = TempPath("nonsquare.csv");
  std::ofstream out(path);
  out << "1,2,3\n4,5,6\n";
  out.close();
  EXPECT_FALSE(LoadAdjacencyCsv(path).ok());
}

TEST(CsvTest, IndividualRoundTrip) {
  GeneratorConfig config;
  config.days = 6;
  config.seed = 3;
  Individual person = GenerateIndividual(config, 0);
  std::string path = TempPath("individual.csv");
  ASSERT_TRUE(SaveIndividualCsv(person, EmaItemNames(), path).ok());

  Result<Individual> loaded = LoadIndividualCsv("loaded_0", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().id, "loaded_0");
  EXPECT_EQ(loaded.value().observations.ToVector(),
            person.observations.ToVector());
  EXPECT_FALSE(loaded.value().ground_truth_network.has_value());
}

// --- Edge cases: CRLF, quoting, blank tails, missing values ---------------

TEST(CsvTest, CrlfLineEndingsAccepted) {
  std::string path = TempPath("crlf.csv");
  std::ofstream out(path, std::ios::binary);
  out << "a,b\r\n1,2\r\n3,4\r\n";
  out.close();
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(loaded.value().ToVector(), (std::vector<double>{1, 2, 3, 4}));
}

TEST(CsvTest, CrlfBlankLineAtEndAccepted) {
  std::string path = TempPath("crlf_tail.csv");
  std::ofstream out(path, std::ios::binary);
  out << "1,2\r\n3,4\r\n\r\n";
  out.close();
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().shape(), (Shape{2, 2}));
}

TEST(CsvTest, QuotedHeaderFieldMayContainDelimiter) {
  std::string path = TempPath("quoted_header.csv");
  std::ofstream out(path);
  out << "\"mood, positive\",energy\n0.5,0.25\n";
  out.close();
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(names,
            (std::vector<std::string>{"mood, positive", "energy"}));
  EXPECT_EQ(loaded.value().shape(), (Shape{1, 2}));
}

TEST(CsvTest, QuotedDataCellsAndEscapedQuotes) {
  std::string path = TempPath("quoted_cells.csv");
  std::ofstream out(path);
  out << "\"he said \"\"hi\"\"\",y\n\"1.5\",\"2\"\n";
  out.close();
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(names, (std::vector<std::string>{"he said \"hi\"", "y"}));
  EXPECT_EQ(loaded.value().ToVector(), (std::vector<double>{1.5, 2}));
}

TEST(CsvTest, HeaderWithDelimiterRoundTrips) {
  Tensor m = Tensor::FromVector(Shape{1, 2}, {1, 2});
  std::string path = TempPath("hdr_comma.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, {"a,b", "c\"d"}, path).ok());
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(names, (std::vector<std::string>{"a,b", "c\"d"}));
  EXPECT_EQ(loaded.value().ToVector(), m.ToVector());
}

TEST(CsvTest, NanSpellingsLoadAsNan) {
  std::string path = TempPath("nan.csv");
  std::ofstream out(path);
  out << "1,nan\nNaN,4\n";
  out.close();
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const double* d = loaded.value().data();
  EXPECT_EQ(d[0], 1.0);
  EXPECT_TRUE(std::isnan(d[1]));
  EXPECT_TRUE(std::isnan(d[2]));
  EXPECT_EQ(d[3], 4.0);
}

TEST(CsvTest, EmptyCellsLoadAsNan) {
  std::string path = TempPath("missing.csv");
  std::ofstream out(path);
  out << "a,b,c\n1,,3\n,5,\n";
  out.close();
  std::vector<std::string> names;
  Result<Tensor> loaded = LoadMatrixCsv(path, &names);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().shape(), (Shape{2, 3}));
  const double* d = loaded.value().data();
  EXPECT_EQ(d[0], 1.0);
  EXPECT_TRUE(std::isnan(d[1]));
  EXPECT_EQ(d[2], 3.0);
  EXPECT_TRUE(std::isnan(d[3]));
  EXPECT_EQ(d[4], 5.0);
  EXPECT_TRUE(std::isnan(d[5]));
}

TEST(CsvTest, NanRowsSurviveSaveLoadRoundTrip) {
  Tensor m = Tensor::FromVector(
      Shape{1, 3}, {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  std::string path = TempPath("nan_roundtrip.csv");
  ASSERT_TRUE(SaveMatrixCsv(m, {}, path).ok());
  Result<Tensor> loaded = LoadMatrixCsv(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const double* d = loaded.value().data();
  EXPECT_EQ(d[0], 1.0);
  EXPECT_TRUE(std::isnan(d[1]));
  EXPECT_EQ(d[2], 3.0);
}

TEST(CsvTest, SplitCsvLineSemantics) {
  EXPECT_EQ(SplitCsvLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("\"x\"\"y\""), (std::vector<std::string>{"x\"y"}));
  EXPECT_EQ(SplitCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitCsvLine(""), (std::vector<std::string>{""}));
}

TEST(CsvTest, SaveRejectsWrongRank) {
  Tensor bad = Tensor::Zeros(Shape{4});
  EXPECT_FALSE(SaveMatrixCsv(bad, {}, TempPath("bad.csv")).ok());
}

TEST(CsvTest, SaveRejectsHeaderSizeMismatch) {
  Tensor m = Tensor::Zeros(Shape{1, 3});
  EXPECT_FALSE(SaveMatrixCsv(m, {"a", "b"}, TempPath("hdr.csv")).ok());
}

}  // namespace
}  // namespace emaf::data
