// WindowedGraphBuilder suite (ctest labels: online, fast). Pins the
// determinism contract (same log prefix -> bitwise-identical adjacency,
// across metrics and across a reopened log), the edges_changed drift
// metric, the GDT keep_fraction hook, and the refusal codes (kRandom,
// bad fraction, unknown id, below min_rows).

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/construction.h"
#include "online/observation_log.h"
#include "online/windowed_graph.h"

namespace emaf::online {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// A smooth multivariate signal whose inter-variable structure drifts
// with time, so later windows derive different graphs.
std::vector<double> Row(int64_t t, int64_t width) {
  std::vector<double> row(width);
  for (int64_t v = 0; v < width; ++v) {
    const double phase = 0.3 * static_cast<double>(t) +
                         0.05 * static_cast<double>(t) * static_cast<double>(v);
    row[static_cast<size_t>(v)] =
        std::sin(phase) + 0.25 * static_cast<double>(v);
  }
  return row;
}

void Fill(ObservationLog& log, const std::string& id, int64_t rows,
          int64_t width) {
  for (int64_t t = 0; t < rows; ++t) {
    ASSERT_TRUE(log.Append(id, Row(t, width)).ok());
  }
}

WindowedGraphOptions Options(graph::GraphMetric metric) {
  WindowedGraphOptions options;
  options.window_rows = 16;
  options.min_rows = 8;
  options.build.metric = metric;
  options.build.knn_k = 2;
  return options;
}

TEST(WindowedGraphTest, SameLogPrefixSameGraphAcrossMetrics) {
  const std::string dir_a = FreshDir("wgraph_det_a");
  const std::string dir_b = FreshDir("wgraph_det_b");
  Result<ObservationLog> a = ObservationLog::Open(dir_a);
  Result<ObservationLog> b = ObservationLog::Open(dir_b);
  ASSERT_TRUE(a.ok() && b.ok());
  Fill(a.value(), "p01", 20, 4);
  Fill(b.value(), "p01", 20, 4);
  for (graph::GraphMetric metric :
       {graph::GraphMetric::kEuclidean, graph::GraphMetric::kKnn,
        graph::GraphMetric::kDtw, graph::GraphMetric::kCorrelation}) {
    WindowedGraphBuilder first(Options(metric));
    WindowedGraphBuilder second(Options(metric));
    Result<graph::AdjacencyMatrix> ga = first.Build(a.value(), "p01");
    Result<graph::AdjacencyMatrix> gb = second.Build(b.value(), "p01");
    ASSERT_TRUE(ga.ok()) << ga.status().ToString();
    ASSERT_TRUE(gb.ok()) << gb.status().ToString();
    EXPECT_TRUE(ga.value() == gb.value())
        << "metric " << graph::GraphMetricName(metric);
  }
}

TEST(WindowedGraphTest, SurvivesLogReopen) {
  const std::string dir = FreshDir("wgraph_reopen");
  {
    Result<ObservationLog> log = ObservationLog::Open(dir);
    ASSERT_TRUE(log.ok());
    Fill(log.value(), "p02", 12, 3);
  }
  Result<ObservationLog> before = ObservationLog::Open(dir);
  ASSERT_TRUE(before.ok());
  WindowedGraphBuilder builder(Options(graph::GraphMetric::kCorrelation));
  Result<graph::AdjacencyMatrix> g1 = builder.Build(before.value(), "p02");
  ASSERT_TRUE(g1.ok());
  Result<ObservationLog> after = ObservationLog::Open(dir);
  ASSERT_TRUE(after.ok());
  WindowedGraphBuilder rebuilt(Options(graph::GraphMetric::kCorrelation));
  Result<graph::AdjacencyMatrix> g2 = rebuilt.Build(after.value(), "p02");
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(g1.value() == g2.value());
}

TEST(WindowedGraphTest, TracksEdgeChangesBetweenBuilds) {
  const std::string dir = FreshDir("wgraph_drift");
  Result<ObservationLog> log = ObservationLog::Open(dir);
  ASSERT_TRUE(log.ok());
  Fill(log.value(), "p03", 16, 4);
  WindowedGraphOptions options = Options(graph::GraphMetric::kKnn);
  WindowedGraphBuilder builder(options);
  EXPECT_EQ(builder.last_edges_changed("p03"), -1);
  ASSERT_TRUE(builder.Build(log.value(), "p03").ok());
  EXPECT_EQ(builder.last_edges_changed("p03"), -1);  // needs two builds
  // Identical window again: zero drift.
  ASSERT_TRUE(builder.Build(log.value(), "p03").ok());
  EXPECT_EQ(builder.last_edges_changed("p03"), 0);
  // Push the window forward; the drifting signal changes the kNN graph.
  Fill(log.value(), "p03", 16, 4);
  Result<graph::AdjacencyMatrix> g2 = builder.Build(log.value(), "p03");
  ASSERT_TRUE(g2.ok());
  EXPECT_GE(builder.last_edges_changed("p03"), 0);
}

TEST(WindowedGraphTest, CountEdgeChangesIsSymmetricDifference) {
  graph::AdjacencyMatrix a(3);
  graph::AdjacencyMatrix b(3);
  a.set(0, 1, 0.5);
  a.set(1, 2, 0.5);  // a: {01, 12}
  b.set(0, 1, 0.9);
  b.set(0, 2, 0.9);  // b: {01, 02}
  EXPECT_EQ(CountEdgeChanges(a, b), 2);  // 12 gone, 02 new
  EXPECT_EQ(CountEdgeChanges(a, a), 0);
  graph::AdjacencyMatrix wider(4);
  wider.set(0, 1, 1.0);
  EXPECT_EQ(CountEdgeChanges(a, wider), 3);  // incomparable: sum of both
}

TEST(WindowedGraphTest, AppliesKeepFraction) {
  const std::string dir = FreshDir("wgraph_gdt");
  Result<ObservationLog> log = ObservationLog::Open(dir);
  ASSERT_TRUE(log.ok());
  Fill(log.value(), "p04", 16, 5);
  WindowedGraphOptions dense = Options(graph::GraphMetric::kEuclidean);
  WindowedGraphOptions sparse = dense;
  sparse.keep_fraction = 0.4;
  WindowedGraphBuilder dense_builder(dense);
  WindowedGraphBuilder sparse_builder(sparse);
  Result<graph::AdjacencyMatrix> full = dense_builder.Build(log.value(), "p04");
  Result<graph::AdjacencyMatrix> cut = sparse_builder.Build(log.value(), "p04");
  ASSERT_TRUE(full.ok() && cut.ok());
  EXPECT_LT(cut.value().NumUndirectedEdges(), full.value().NumUndirectedEdges());
  EXPECT_TRUE(cut.value() ==
              graph::KeepTopFraction(full.value(), sparse.keep_fraction));
}

TEST(WindowedGraphTest, RefusalCodes) {
  const std::string dir = FreshDir("wgraph_refuse");
  Result<ObservationLog> log = ObservationLog::Open(dir);
  ASSERT_TRUE(log.ok());
  Fill(log.value(), "p05", 5, 3);  // below min_rows = 8

  WindowedGraphBuilder builder(Options(graph::GraphMetric::kCorrelation));
  EXPECT_EQ(builder.Build(log.value(), "ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(builder.Build(log.value(), "p05").status().code(),
            StatusCode::kFailedPrecondition);

  WindowedGraphBuilder random(Options(graph::GraphMetric::kRandom));
  EXPECT_EQ(random.Build(log.value(), "p05").status().code(),
            StatusCode::kInvalidArgument);

  WindowedGraphOptions bad = Options(graph::GraphMetric::kCorrelation);
  bad.keep_fraction = 0.0;
  WindowedGraphBuilder bad_fraction(bad);
  EXPECT_EQ(bad_fraction.Build(log.value(), "p05").status().code(),
            StatusCode::kInvalidArgument);

  WindowedGraphOptions shallow = Options(graph::GraphMetric::kCorrelation);
  shallow.window_rows = 4;  // < min_rows
  WindowedGraphBuilder bad_window(shallow);
  EXPECT_EQ(bad_window.Build(log.value(), "p05").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emaf::online
