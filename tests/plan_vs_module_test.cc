// Differential harness for compiled inference plans (DESIGN.md, "Compiled
// plans"): for every model family in the paper's Table 2, across
// randomized seeds and window geometries, the compiled plan's output must
// be bitwise identical to the module forward (core::Predict) — at 1, 2
// and 8 pool threads, and under ArenaScope buffer reuse across repeated
// requests. Compile() must *succeed* in every sweep cell (asserted), so
// the comparison is genuinely plan-vs-module, never fallback-vs-module.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "plan/interpreter.h"
#include "plan/recorder.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::plan {
namespace {

using tensor::Scalar;
using tensor::Shape;
using tensor::Tensor;

const std::vector<std::string>& AllFamilies() {
  static const std::vector<std::string> families = {"LSTM", "VAR", "A3TGCN",
                                                    "ASTGCN", "MTGNN"};
  return families;
}

// Pins the global ThreadPool to `n` threads for one scope (same idiom as
// tensor_property_test).
struct ScopedThreads {
  explicit ScopedThreads(int64_t n) {
    common::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ScopedThreads() { common::ThreadPool::SetGlobalNumThreads(1); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& context) {
  ASSERT_EQ(a.shape(), b.shape()) << context;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.NumElements()) * sizeof(Scalar)),
            0)
      << context;
}

// Random but seed-reproducible model geometry, in the same spirit as
// tensor_property_test's RandomShape: small enough to sweep widely,
// varied enough to hit rank-edge paths (single-variable graphs, length-2
// windows, batch-1 requests).
models::ModelConfig RandomConfig(const std::string& family, Rng* rng) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = rng->UniformInt(2, 6);
  config.input_length = rng->UniformInt(2, 5);
  int64_t hidden = 1 << rng->UniformInt(2, 3);  // 4 or 8
  config.lstm.hidden_units = hidden;
  config.a3tgcn.hidden_units = hidden;
  config.astgcn.hidden_units = hidden;
  config.astgcn.num_blocks = rng->UniformInt(1, 2);
  config.mtgnn.residual_channels = hidden;
  config.mtgnn.conv_channels = hidden;
  config.mtgnn.skip_channels = hidden;
  config.mtgnn.end_channels = 2 * hidden;
  config.mtgnn.embedding_dim = rng->UniformInt(2, 4);
  if (family != "LSTM" && family != "VAR") {
    graph::AdjacencyMatrix adjacency(config.num_variables);
    for (int64_t i = 0; i < config.num_variables; ++i) {
      for (int64_t j = 0; j < config.num_variables; ++j) {
        if (i != j && rng->Uniform() < 0.6) {
          adjacency.set(i, j, 0.1 + 0.9 * rng->Uniform());
        }
      }
    }
    config.adjacency = adjacency;
  }
  return config;
}

class PlanVsModuleTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanVsModuleTest, BitwiseEqualAcrossFamiliesThreadsAndArenaReuse) {
  Rng rng(43000 + GetParam());
  for (const std::string& family : AllFamilies()) {
    models::ModelConfig config = RandomConfig(family, &rng);
    Rng model_rng(500 + static_cast<uint64_t>(GetParam()));
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &model_rng);
    model->SetTraining(false);

    int64_t batch = rng.UniformInt(1, 4);
    Shape window_shape{batch, config.input_length, config.num_variables};
    Tensor window = Tensor::Uniform(window_shape, -2, 2, &rng);
    const std::string context =
        family + " seed=" + std::to_string(GetParam()) +
        " window=" + window_shape.ToString();

    Tensor reference = core::Predict(model.get(), window);
    Result<std::shared_ptr<const Plan>> compiled =
        Compile(model.get(), window);
    // A compile failure would silently degrade every assertion below to
    // module-vs-module; fail loudly instead.
    ASSERT_TRUE(compiled.ok()) << context << ": "
                               << compiled.status().ToString();
    const Plan& plan = *compiled.value();
    EXPECT_EQ(plan.family, family);
    EXPECT_EQ(plan.input_shape, window_shape) << context;

    tensor::InferenceArena arena;
    for (int64_t threads : {1, 2, 8}) {
      ScopedThreads scoped(threads);
      std::string at = context + " threads=" + std::to_string(threads);
      // The module path itself must not move across thread counts
      // (established determinism), so one reference serves all cells.
      ExpectBitwiseEqual(core::Predict(model.get(), window), reference, at);
      // Repeated requests through one shared arena: buffers recycle
      // between and within iterations (instruction release lists), and
      // every pass must still produce the reference bytes.
      for (int iteration = 0; iteration < 3; ++iteration) {
        Result<Tensor> out = Execute(plan, window, &arena);
        ASSERT_TRUE(out.ok()) << at << ": " << out.status().ToString();
        ExpectBitwiseEqual(out.value(), reference,
                           at + " iteration=" + std::to_string(iteration));
      }
      // Interleave a module forward drawing from the same arena, then a
      // plan pass again — cross-path buffer sharing must not leak bytes.
      {
        tensor::ArenaScope scope(&arena);
        ExpectBitwiseEqual(core::Predict(model.get(), window), reference,
                           at + " module-on-arena");
      }
      Result<Tensor> again = Execute(plan, window, &arena);
      ASSERT_TRUE(again.ok()) << at;
      ExpectBitwiseEqual(again.value(), reference, at + " after-interleave");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanVsModuleTest, ::testing::Range(0, 6));

// The plan executes the *recorded* constants, so retraining (mutating
// parameters in place) must invalidate any previously compiled plan at a
// higher layer; at this layer, a plan is a snapshot. Pin that contract:
// executing a stale plan after a weight change reproduces the OLD bytes.
TEST(PlanSnapshotSemantics, StalePlanServesRecordedWeights) {
  Rng rng(7);
  models::ModelConfig config;
  config.family = "LSTM";
  config.num_variables = 3;
  config.input_length = 2;
  config.lstm.hidden_units = 4;
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  Tensor window = Tensor::Uniform(Shape{1, 2, 3}, -1, 1, &rng);

  Tensor before = core::Predict(model.get(), window);
  Result<std::shared_ptr<const Plan>> compiled = Compile(model.get(), window);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  for (const auto& named : model->NamedParameters()) {
    Scalar* d = named.value->data();
    for (int64_t i = 0; i < named.value->NumElements(); ++i) d[i] += 0.25;
  }
  Tensor after = core::Predict(model.get(), window);
  ASSERT_NE(before.ToVector(), after.ToVector());

  Result<Tensor> stale = Execute(*compiled.value(), window, nullptr);
  ASSERT_TRUE(stale.ok());
  ExpectBitwiseEqual(stale.value(), before, "stale plan");
}

}  // namespace
}  // namespace emaf::plan
