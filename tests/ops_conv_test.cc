#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

// Direct 7-loop reference convolution the im2col implementation must match.
Tensor ReferenceConv2d(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, const Conv2dOptions& o) {
  int64_t batch = input.dim(0);
  int64_t cin = input.dim(1);
  int64_t in_h = input.dim(2);
  int64_t in_w = input.dim(3);
  int64_t cout = weight.dim(0);
  int64_t kh = weight.dim(2);
  int64_t kw = weight.dim(3);
  int64_t out_h = (in_h + 2 * o.pad_h - o.dilation_h * (kh - 1) - 1) / o.stride_h + 1;
  int64_t out_w = (in_w + 2 * o.pad_w - o.dilation_w * (kw - 1) - 1) / o.stride_w + 1;
  Tensor out = Tensor::Zeros(Shape{batch, cout, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < cout; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = bias.defined() ? bias.At({oc}) : 0.0;
          for (int64_t c = 0; c < cin; ++c) {
            for (int64_t i = 0; i < kh; ++i) {
              for (int64_t j = 0; j < kw; ++j) {
                int64_t ih = oh * o.stride_h - o.pad_h + i * o.dilation_h;
                int64_t iw = ow * o.stride_w - o.pad_w + j * o.dilation_w;
                if (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w) continue;
                acc += input.At({n, c, ih, iw}) * weight.At({oc, c, i, j});
              }
            }
          }
          out.Set({n, oc, oh, ow}, acc);
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  std::string name;
  int64_t batch, cin, h, w, cout, kh, kw;
  Conv2dOptions options;
};

class ConvForwardTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForwardTest, MatchesReference) {
  const ConvCase& c = GetParam();
  Rng rng(13);
  Tensor input = Tensor::Uniform(Shape{c.batch, c.cin, c.h, c.w}, -1, 1, &rng);
  Tensor weight =
      Tensor::Uniform(Shape{c.cout, c.cin, c.kh, c.kw}, -1, 1, &rng);
  Tensor bias = Tensor::Uniform(Shape{c.cout}, -1, 1, &rng);
  Tensor fast = Conv2d(input, weight, bias, c.options);
  Tensor ref = ReferenceConv2d(input, weight, bias, c.options);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (int64_t i = 0; i < fast.NumElements(); ++i) {
    ASSERT_NEAR(fast.data()[i], ref.data()[i], 1e-10) << c.name << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvForwardTest,
    ::testing::Values(
        ConvCase{"one_by_one", 2, 3, 4, 5, 6, 1, 1, {}},
        ConvCase{"time_kernel", 2, 4, 5, 7, 3, 1, 3, {}},
        ConvCase{"padded", 2, 2, 4, 6, 3, 1, 3, {1, 1, 0, 1, 1, 1}},
        ConvCase{"square_kernel", 1, 2, 5, 5, 2, 3, 3, {1, 1, 1, 1, 1, 1}},
        ConvCase{"strided", 1, 2, 6, 8, 2, 2, 2, {2, 2, 0, 0, 1, 1}},
        ConvCase{"dilated", 1, 2, 7, 9, 2, 2, 3, {1, 1, 0, 0, 2, 2}},
        ConvCase{"dilated_padded", 1, 1, 5, 9, 1, 1, 3, {1, 1, 0, 2, 1, 2}},
        ConvCase{"mtgnn_inception", 3, 8, 5, 6, 4, 1, 2, {}},
        ConvCase{"collapse_time", 2, 4, 5, 5, 1, 1, 5, {}}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

TEST(ConvTest, NoBias) {
  Rng rng(14);
  Tensor input = Tensor::Uniform(Shape{1, 2, 3, 4}, -1, 1, &rng);
  Tensor weight = Tensor::Uniform(Shape{2, 2, 1, 1}, -1, 1, &rng);
  Conv2dOptions o;
  Tensor fast = Conv2d(input, weight, Tensor(), o);
  Tensor ref = ReferenceConv2d(input, weight, Tensor(), o);
  for (int64_t i = 0; i < fast.NumElements(); ++i) {
    EXPECT_NEAR(fast.data()[i], ref.data()[i], 1e-10);
  }
}

TEST(ConvTest, IdentityKernel) {
  Rng rng(15);
  Tensor input = Tensor::Uniform(Shape{1, 1, 3, 3}, -1, 1, &rng);
  Tensor weight = Tensor::Ones(Shape{1, 1, 1, 1});
  Tensor out = Conv2d(input, weight, Tensor(), {});
  EXPECT_EQ(out.ToVector(), input.ToVector());
}

TEST(ConvDeathTest, BadShapes) {
  EXPECT_DEATH(Conv2d(Tensor::Zeros(Shape{2, 3}), Tensor::Zeros(Shape{1, 3, 1, 1}),
                      Tensor(), {}),
               "");
  EXPECT_DEATH(Conv2d(Tensor::Zeros(Shape{1, 3, 4, 4}),
                      Tensor::Zeros(Shape{1, 2, 1, 1}), Tensor(), {}),
               "channel mismatch");
}

TEST(ConvDeathTest, EmptyOutput) {
  EXPECT_DEATH(Conv2d(Tensor::Zeros(Shape{1, 1, 2, 2}),
                      Tensor::Zeros(Shape{1, 1, 3, 3}), Tensor(), {}),
               "empty output");
}

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, MatchesFiniteDifferences) {
  const ConvCase& c = GetParam();
  Rng rng(16);
  Tensor input = Tensor::Uniform(Shape{c.batch, c.cin, c.h, c.w}, -1, 1, &rng);
  Tensor weight =
      Tensor::Uniform(Shape{c.cout, c.cin, c.kh, c.kw}, -1, 1, &rng);
  Tensor bias = Tensor::Uniform(Shape{c.cout}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor out = Conv2d(in[0], in[1], in[2], c.options);
        return Sum(Mul(out, out));
      },
      {input, weight, bias}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << c.name << " err " << r.max_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradTest,
    ::testing::Values(
        ConvCase{"one_by_one", 2, 2, 3, 3, 2, 1, 1, {}},
        ConvCase{"time_kernel", 1, 2, 3, 5, 2, 1, 3, {}},
        ConvCase{"padded", 1, 2, 3, 4, 2, 1, 3, {1, 1, 0, 1, 1, 1}},
        ConvCase{"strided", 1, 1, 5, 6, 1, 2, 2, {2, 2, 0, 0, 1, 1}},
        ConvCase{"dilated", 1, 1, 5, 6, 1, 2, 2, {1, 1, 0, 0, 2, 2}}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace emaf::tensor
