// Client retry policy suite (ISSUE PR-8): the retryable set is exactly
// kUnavailable; backoff sequences are deterministic (same seed, same
// waits, bitwise) and capped; ForecastWithRetry survives a transient
// store fault with one deterministic backoff wait, never retries
// kNotFound or kDeadlineExceeded, and reconnects automatically when the
// server drops the connection mid-conversation.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "serve/client.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

TEST(RetryPolicyTest, RetryableSetIsExactlyUnavailable) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kDataLoss, StatusCode::kResourceExhausted,
        StatusCode::kAborted, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    EXPECT_EQ(IsRetryableStatus(code), code == StatusCode::kUnavailable)
        << StatusCodeName(code);
  }
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("queue full")));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("too late")));
}

TEST(RetryPolicyTest, BackoffSequenceIsDeterministicBoundedAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 100;

  auto sequence = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<int64_t> waits;
    for (int64_t attempt = 1; attempt <= 10; ++attempt) {
      waits.push_back(BackoffWithJitterMs(policy, attempt, &rng));
    }
    return waits;
  };

  // Same seed -> the exact same wait sequence, bitwise.
  std::vector<int64_t> first = sequence(policy.jitter_seed);
  EXPECT_EQ(first, sequence(policy.jitter_seed));

  // Every wait sits in [half, full] of the capped exponential envelope —
  // never zero, never over the cap.
  std::vector<int64_t> envelope = {10, 20, 40, 80, 100, 100, 100, 100, 100,
                                   100};
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_GE(first[i], envelope[i] / 2) << "attempt " << i + 1;
    EXPECT_LE(first[i], envelope[i]) << "attempt " << i + 1;
  }
}

TEST(RetryPolicyTest, DegenerateBoundsAreClampedSanely) {
  RetryPolicy policy;
  policy.base_backoff_ms = 0;   // clamped to 1
  policy.max_backoff_ms = -50;  // clamped to >= base
  Rng rng(1);
  for (int64_t attempt = 1; attempt <= 5; ++attempt) {
    int64_t wait = BackoffWithJitterMs(policy, attempt, &rng);
    EXPECT_GE(wait, 0);
    EXPECT_LE(wait, 1);
  }
}

// End-to-end fixture: one tiny tenant behind a real loopback server.
class RetryClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/retry_client_snapshots";
    expected_ = testutil::MakeTinySnapshotDir(dir_, {"alpha"});
    window_ = testutil::TinyWindow();
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      ASSERT_TRUE(fault::Configure("", 0).ok());
    }
    std::filesystem::remove_all(dir_);
  }

  Server StartServerOrDie(const ServerOptions& options = {}) {
    Result<Server> server = Server::Start(dir_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  std::string dir_;
  std::map<std::string, std::vector<double>> expected_;
  tensor::Tensor window_ = tensor::Tensor::Zeros(tensor::Shape{1});
};

// A transient cold-load fault: attempt 1 is answered kUnavailable, the
// policy waits exactly one deterministic backoff, attempt 2 is served the
// exact bytes. The observed wait equals the one computed from a fresh Rng
// with the policy seed — the whole retry schedule is reproducible.
TEST_F(RetryClientTest, TransientStoreFaultIsRetriedOnceThenServed) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  Server server = StartServerOrDie();
  ASSERT_TRUE(fault::Configure("serve.store.load/alpha=1:1", 7).ok());

  ClientOptions options;
  options.retry.max_attempts = 3;
  std::vector<int64_t> waits;
  options.backoff_sleeper = [&](int64_t ms) { waits.push_back(ms); };
  Result<Client> client = Client::Connect(server.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<tensor::Tensor> out = client.value().ForecastWithRetry("alpha",
                                                                window_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().ToVector(), expected_.at("alpha"));

  Rng jitter(options.retry.jitter_seed);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0], BackoffWithJitterMs(options.retry, 1, &jitter));
}

TEST_F(RetryClientTest, NotFoundIsTerminalAndNeverRetried) {
  Server server = StartServerOrDie();
  ClientOptions options;
  options.retry.max_attempts = 5;
  int64_t sleeps = 0;
  options.backoff_sleeper = [&](int64_t) { ++sleeps; };
  Result<Client> client = Client::Connect(server.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<tensor::Tensor> out =
      client.value().ForecastWithRetry("stranger", window_);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sleeps, 0);  // the request is wrong; it will be wrong again
}

TEST_F(RetryClientTest, DeadlineExceededIsTerminalAndNeverRetried) {
  // Batches never close by age, so a 1-tick deadline deterministically
  // expires before any forward runs.
  ServerOptions server_options;
  server_options.scheduler.max_delay_ticks = 1'000'000'000;
  Server server = StartServerOrDie(server_options);
  ClientOptions options;
  options.retry.max_attempts = 5;
  int64_t sleeps = 0;
  options.backoff_sleeper = [&](int64_t) { ++sleeps; };
  Result<Client> client = Client::Connect(server.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<tensor::Tensor> out = client.value().ForecastWithRetry(
      "alpha", window_, /*deadline_ticks=*/1);
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(sleeps, 0);  // a late answer helps nobody
}

// The server kills the first connection via a read fault: the client sees
// kUnavailable ("server closed"), marks its stream broken, reconnects on
// the retry, and is served — all inside one ForecastWithRetry call.
TEST_F(RetryClientTest, ConnectionLossReconnectsAndSucceeds) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  Server server = StartServerOrDie();
  // Conn index 2 is the first accepted connection (0 = listen, 1 = wake).
  ASSERT_TRUE(fault::Configure("serve.server.read/2=1:1", 7).ok());

  ClientOptions options;
  options.retry.max_attempts = 3;
  std::vector<int64_t> waits;
  options.backoff_sleeper = [&](int64_t ms) { waits.push_back(ms); };
  Result<Client> client = Client::Connect(server.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<tensor::Tensor> out = client.value().ForecastWithRetry("alpha",
                                                                window_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().ToVector(), expected_.at("alpha"));
  EXPECT_EQ(waits.size(), 1u);  // one loss, one backoff, one reconnect
  EXPECT_FALSE(client.value().stream_broken());  // healed by the reconnect
  EXPECT_GE(server.stats().connections_accepted, 2u);
}

// Reconnect() alone: after a deliberate break the same Client object dials
// back in, and request ids keep counting up so stale replies can never
// alias a post-reconnect request.
TEST_F(RetryClientTest, ReconnectKeepsRequestIdsMonotonic) {
  Server server = StartServerOrDie();
  Result<Client> connected = Client::Connect(server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();

  Result<uint64_t> first = client.SendForecastRequest("alpha", window_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(client.Reconnect().ok());
  EXPECT_FALSE(client.stream_broken());
  Result<uint64_t> second = client.SendForecastRequest("alpha", window_);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value(), first.value());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().request_id, second.value());
}

}  // namespace
}  // namespace emaf::serve
