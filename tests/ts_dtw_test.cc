#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ts/distance.h"
#include "ts/dtw.h"

namespace emaf::ts {
namespace {

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  std::vector<double> a = {1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwTest, IsSymmetric) {
  std::vector<double> a = {1, 3, 2, 5};
  std::vector<double> b = {2, 2, 4, 4, 1};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
}

TEST(DtwTest, NonNegative) {
  std::vector<double> a = {0, 1};
  std::vector<double> b = {5, -3, 2};
  EXPECT_GT(DtwDistance(a, b), 0.0);
}

TEST(DtwTest, BoundedByEuclideanForEqualLength) {
  // DTW can only relax the alignment, never worsen it.
  std::vector<double> a = {1, 5, 2, 8, 3, 9};
  std::vector<double> b = {2, 4, 1, 9, 2, 7};
  EXPECT_LE(DtwDistance(a, b), EuclideanDistance(a, b) + 1e-12);
}

TEST(DtwTest, ForgivesTimeShift) {
  // b is a delayed by two steps: DTW should be far smaller than Euclidean.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(std::sin(0.4 * i));
    b.push_back(std::sin(0.4 * (i - 2)));
  }
  EXPECT_LT(DtwDistance(a, b), 0.5 * EuclideanDistance(a, b));
}

TEST(DtwTest, SingleElementSeries) {
  std::vector<double> a = {2.0};
  std::vector<double> b = {5.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 3.0);
  std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, c), std::sqrt(3.0 * 9.0));
}

TEST(DtwTest, DifferentLengthsWork) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {1, 1, 2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 0.0);  // perfect warp
}

TEST(DtwTest, BandConstraintTightensDistance) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(std::sin(0.5 * i));
    b.push_back(std::sin(0.5 * (i - 4)));
  }
  DtwOptions narrow;
  narrow.window = 1;
  DtwOptions wide;
  wide.window = 10;
  // Narrower band restricts warping -> distance can only grow.
  EXPECT_GE(DtwDistance(a, b, narrow), DtwDistance(a, b, wide) - 1e-12);
}

TEST(DtwTest, BandWideEnoughMatchesUnconstrained) {
  std::vector<double> a = {1, 3, 2, 4, 1};
  std::vector<double> b = {2, 1, 4, 2, 2};
  DtwOptions wide;
  wide.window = 5;
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, wide), DtwDistance(a, b));
}

TEST(DtwTest, BandAutoWidensForLengthDifference) {
  std::vector<double> a = {1, 2};
  std::vector<double> b = {1, 2, 3, 4, 5, 6};
  DtwOptions narrow;
  narrow.window = 0;  // would be infeasible without auto-widening
  EXPECT_GT(DtwDistance(a, b, narrow), 0.0);
}

TEST(DtwPathTest, StartsAndEndsAtCorners) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {1, 3, 4};
  std::vector<std::pair<int64_t, int64_t>> path = DtwPath(a, b);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (std::pair<int64_t, int64_t>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<int64_t, int64_t>{3, 2}));
}

TEST(DtwPathTest, IsMonotonicAndContiguous) {
  std::vector<double> a = {1, 5, 2, 4, 3};
  std::vector<double> b = {2, 4, 1, 5};
  std::vector<std::pair<int64_t, int64_t>> path = DtwPath(a, b);
  for (size_t i = 1; i < path.size(); ++i) {
    int64_t di = path[i].first - path[i - 1].first;
    int64_t dj = path[i].second - path[i - 1].second;
    EXPECT_GE(di, 0);
    EXPECT_GE(dj, 0);
    EXPECT_LE(di, 1);
    EXPECT_LE(dj, 1);
    EXPECT_GE(di + dj, 1);
  }
}

TEST(DtwPathTest, IdenticalSeriesIsDiagonal) {
  std::vector<double> a = {1, 2, 3};
  std::vector<std::pair<int64_t, int64_t>> path = DtwPath(a, a);
  ASSERT_EQ(path.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(path[static_cast<size_t>(i)].first, i);
    EXPECT_EQ(path[static_cast<size_t>(i)].second, i);
  }
}

TEST(DtwDeathTest, EmptySeries) {
  std::vector<double> a = {};
  std::vector<double> b = {1.0};
  EXPECT_DEATH(DtwDistance(a, b), "");
}

}  // namespace
}  // namespace emaf::ts
