#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "models/lstm_forecaster.h"
#include "tensor/ops.h"

namespace emaf::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

ts::WindowDataset TinyDataset(Rng* rng) {
  ts::WindowDataset ds;
  ds.inputs = Tensor::Uniform(Shape{10, 2, 3}, -1, 1, rng);
  // Predict the last input row (learnable identity-ish task).
  ds.targets = tensor::Select(ds.inputs, 1, 1);
  return ds;
}

TEST(TrainerTest, LossDecreases) {
  Rng rng(1);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 8;
  config.dropout = 0.0;
  models::LstmForecaster model(3, 2, config, &rng);
  TrainConfig train;
  train.epochs = 80;
  TrainResult result = TrainForecaster(&model, ds, train);
  ASSERT_EQ(result.epoch_losses.size(), 80u);
  EXPECT_LT(result.final_loss, 0.3 * result.epoch_losses.front());
  EXPECT_DOUBLE_EQ(result.final_loss, result.epoch_losses.back());
}

TEST(TrainerTest, DeterministicGivenSameSeedModel) {
  Rng rng_data(2);
  ts::WindowDataset ds = TinyDataset(&rng_data);
  TrainConfig train;
  train.epochs = 15;
  models::LstmConfig config;
  config.hidden_units = 4;
  Rng rng_a(3);
  models::LstmForecaster a(3, 2, config, &rng_a);
  Rng rng_b(3);
  models::LstmForecaster b(3, 2, config, &rng_b);
  TrainResult ra = TrainForecaster(&a, ds, train);
  TrainResult rb = TrainForecaster(&b, ds, train);
  EXPECT_EQ(ra.epoch_losses, rb.epoch_losses);
}

TEST(TrainerTest, GradClipKeepsTrainingStable) {
  Rng rng(4);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 4;
  models::LstmForecaster model(3, 2, config, &rng);
  TrainConfig train;
  train.epochs = 20;
  train.grad_clip_norm = 0.001;  // extreme clipping -> tiny steps
  TrainResult result = TrainForecaster(&model, ds, train);
  // With this much clipping the loss barely moves — but must stay finite.
  for (double loss : result.epoch_losses) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_GT(result.final_loss, 0.2 * result.epoch_losses.front());
}

TEST(TrainerTest, WeightDecayShrinksParameterNorm) {
  Rng rng(5);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 4;
  auto param_norm = [](models::Forecaster* m) {
    double total = 0.0;
    for (Tensor* p : m->Parameters()) {
      for (double v : p->ToVector()) total += v * v;
    }
    return total;
  };
  TrainConfig plain;
  plain.epochs = 40;
  Rng rng_a(6);
  models::LstmForecaster a(3, 2, config, &rng_a);
  TrainForecaster(&a, ds, plain);

  TrainConfig decayed = plain;
  decayed.weight_decay = 0.05;
  Rng rng_b(6);
  models::LstmForecaster b(3, 2, config, &rng_b);
  TrainForecaster(&b, ds, decayed);
  EXPECT_LT(param_norm(&b), param_norm(&a));
}

TEST(TrainerTest, ModelLeftInTrainingMode) {
  Rng rng(7);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  models::LstmForecaster model(3, 2, config, &rng);
  TrainConfig train;
  train.epochs = 2;
  TrainForecaster(&model, ds, train);
  EXPECT_TRUE(model.training());
}

TEST(TrainerTest, SgdWithHighLearningRateExplodesWithoutClipping) {
  // Plain SGD at an absurd learning rate reproduces textbook gradient
  // explosion (Adam's update normalization masks it). The divergence
  // guard must stop training instead of looping on NaN/inf losses.
  Rng rng(9);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 8;
  config.dropout = 0.0;
  Rng rng_model(10);
  models::LstmForecaster model(3, 2, config, &rng_model);
  TrainConfig train;
  train.epochs = 200;
  train.optimizer = TrainOptimizer::kSgd;
  train.learning_rate = 50.0;
  TrainResult result = TrainForecaster(&model, ds, train);
  ASSERT_TRUE(result.diverged);
  EXPECT_GE(result.divergence_epoch, 0);
  // The guard stops before stepping: losses end at the offending epoch.
  EXPECT_EQ(static_cast<int64_t>(result.epoch_losses.size()),
            result.divergence_epoch + 1);
  EXPECT_LT(result.divergence_epoch, train.epochs);
}

TEST(TrainerTest, GradClipTamesExplodingSgd) {
  // Same optimizer and learning rate as above, with the recovery policy's
  // clip: training must run to completion with finite losses throughout.
  Rng rng(9);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 8;
  config.dropout = 0.0;
  Rng rng_model(10);
  models::LstmForecaster model(3, 2, config, &rng_model);
  TrainConfig train;
  train.epochs = 200;
  train.optimizer = TrainOptimizer::kSgd;
  train.learning_rate = 50.0;
  train.grad_clip_norm = 0.01;
  TrainResult result = TrainForecaster(&model, ds, train);
  EXPECT_FALSE(result.diverged);
  ASSERT_EQ(result.epoch_losses.size(), 200u);
  for (double loss : result.epoch_losses) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(TrainerTest, DivergenceGuardCanBeDisabled) {
  // With the guard off the loop must not early-exit (it may still produce
  // non-finite losses — that is the caller's problem by contract).
  Rng rng(9);
  ts::WindowDataset ds = TinyDataset(&rng);
  models::LstmConfig config;
  config.hidden_units = 8;
  config.dropout = 0.0;
  Rng rng_model(10);
  models::LstmForecaster model(3, 2, config, &rng_model);
  TrainConfig train;
  train.epochs = 20;
  train.optimizer = TrainOptimizer::kSgd;
  train.learning_rate = 50.0;
  train.detect_divergence = false;
  TrainResult result = TrainForecaster(&model, ds, train);
  EXPECT_FALSE(result.diverged);
  EXPECT_EQ(result.epoch_losses.size(), 20u);
}

TEST(TrainerDeathTest, EmptyDatasetRejected) {
  Rng rng(8);
  models::LstmConfig config;
  models::LstmForecaster model(3, 2, config, &rng);
  ts::WindowDataset empty;
  TrainConfig train;
  EXPECT_DEATH(TrainForecaster(&model, empty, train), "");
}

}  // namespace
}  // namespace emaf::core
