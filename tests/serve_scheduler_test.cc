// RequestScheduler suite (ctest labels: store, fast, tsan): virtual-clock
// micro-batching (close on full or aged, never on wall time), backpressure
// (kUnavailable at max_queue), per-request error isolation inside a batch,
// same-id coalescing onto one cold load, and the determinism anchor — a
// scripted submit/advance/pump schedule produces byte-identical results
// and identical batch boundaries at 1, 2 and 8 pool threads.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "serve/model_store.h"
#include "serve/scheduler.h"
#include "serve_test_util.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using testutil::MakeTinySnapshotDir;
using testutil::TinyWindow;

const std::vector<std::string>& Ids() {
  static const std::vector<std::string> ids = {"s0", "s1", "s2", "s3"};
  return ids;
}

class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/scheduler_snapshots");
    expected_ = new std::map<std::string, std::vector<double>>(
        MakeTinySnapshotDir(*dir_, Ids()));
    window_ = new tensor::Tensor(TinyWindow());
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete window_;
    window_ = nullptr;
    delete expected_;
    expected_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  void SetUp() override { common::ThreadPool::SetGlobalNumThreads(1); }
  void TearDown() override { common::ThreadPool::SetGlobalNumThreads(1); }

  static ModelStore OpenStoreOrDie(const ModelStoreOptions& options = {}) {
    Result<ModelStore> store = ModelStore::Open(*dir_, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  static ForecastRequest RequestFor(const std::string& id) {
    return ForecastRequest{id, *window_};
  }

  static std::string* dir_;
  static std::map<std::string, std::vector<double>>* expected_;
  static tensor::Tensor* window_;
};

std::string* SchedulerTest::dir_ = nullptr;
std::map<std::string, std::vector<double>>* SchedulerTest::expected_ =
    nullptr;
tensor::Tensor* SchedulerTest::window_ = nullptr;

TEST_F(SchedulerTest, BatchClosesOnAgeNotBefore) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_batch = 8;
  options.max_delay_ticks = 2;
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  Result<RequestTicket> ticket = scheduler.Submit(RequestFor("s0"));
  ASSERT_TRUE(ticket.ok());
  EXPECT_FALSE(ticket.value().done());

  // Not full and not aged: Pump must leave the batch open.
  EXPECT_EQ(scheduler.Pump(), 0);
  clock.Advance(1);
  EXPECT_EQ(scheduler.Pump(), 0);
  EXPECT_EQ(scheduler.queue_depth(), 1);

  // At age == max_delay_ticks the batch is due.
  clock.Advance(1);
  EXPECT_EQ(scheduler.Pump(), 1);
  EXPECT_EQ(scheduler.queue_depth(), 0);
  ASSERT_TRUE(ticket.value().done());
  ASSERT_TRUE(ticket.value().result().ok());
  EXPECT_EQ(ticket.value().result().value().ToVector(), expected_->at("s0"));
  EXPECT_EQ(scheduler.stats().batches, 1u);
}

TEST_F(SchedulerTest, FullBatchClosesWithoutClockAdvance) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_batch = 2;
  options.max_delay_ticks = 100;  // age alone would never close it
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  ASSERT_TRUE(scheduler.Submit(RequestFor("s0")).ok());
  ASSERT_TRUE(scheduler.Submit(RequestFor("s1")).ok());
  EXPECT_EQ(scheduler.Pump(), 2);  // full at max_batch, age irrelevant
  EXPECT_EQ(scheduler.stats().batches, 1u);
}

TEST_F(SchedulerTest, OverfullQueueSplitsIntoMaxBatchChunks) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_batch = 3;
  options.max_delay_ticks = 0;  // every Pump drains
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 7; ++i) {
    Result<RequestTicket> ticket =
        scheduler.Submit(RequestFor(Ids()[i % Ids().size()]));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  EXPECT_EQ(scheduler.Pump(), 7);
  EXPECT_EQ(scheduler.stats().batches, 3u);  // 3 + 3 + 1
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].done()) << i;
    ASSERT_TRUE(tickets[i].result().ok()) << i;
    EXPECT_EQ(tickets[i].result().value().ToVector(),
              expected_->at(Ids()[i % Ids().size()]))
        << i;
  }
}

TEST_F(SchedulerTest, FullQueueRejectsWithUnavailable) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_queue = 2;
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  ASSERT_TRUE(scheduler.Submit(RequestFor("s0")).ok());
  ASSERT_TRUE(scheduler.Submit(RequestFor("s1")).ok());
  Result<RequestTicket> rejected = scheduler.Submit(RequestFor("s2"));
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_EQ(scheduler.queue_depth(), 2);

  // Draining the queue makes room again.
  EXPECT_EQ(scheduler.Flush(), 2);
  EXPECT_TRUE(scheduler.Submit(RequestFor("s2")).ok());
  EXPECT_EQ(scheduler.stats().submitted, 3u);
}

TEST_F(SchedulerTest, PerRequestErrorsDoNotPoisonTheBatch) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  RequestScheduler scheduler(&store, nullptr, SchedulerOptions{}, &clock);

  Result<RequestTicket> good = scheduler.Submit(RequestFor("s0"));
  Result<RequestTicket> bad = scheduler.Submit(RequestFor("nobody"));
  Result<RequestTicket> also_good = scheduler.Submit(RequestFor("s1"));
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());  // admission succeeds; the *result* is the error
  ASSERT_TRUE(also_good.ok());
  EXPECT_EQ(scheduler.Flush(), 3);

  EXPECT_EQ(bad.value().result().status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(good.value().result().ok());
  EXPECT_EQ(good.value().result().value().ToVector(), expected_->at("s0"));
  ASSERT_TRUE(also_good.value().result().ok());
  EXPECT_EQ(also_good.value().result().value().ToVector(),
            expected_->at("s1"));
  EXPECT_EQ(scheduler.stats().executed, 3u);
}

TEST_F(SchedulerTest, SameIdRequestsCoalesceOnOneColdLoad) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  common::ThreadPool::SetGlobalNumThreads(8);
  RequestScheduler scheduler(&store, nullptr, SchedulerOptions{}, &clock);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Submit(RequestFor("s3")).ok());
  }
  EXPECT_EQ(scheduler.Flush(), 8);
  // The batch ran 8-wide, yet the store's single-flight logic hit the
  // disk exactly once for the shared tenant.
  EXPECT_EQ(store.stats().cold_loads, 1u);
  EXPECT_EQ(store.stats().warm_hits, 7u);
}

// The determinism anchor: one scripted schedule, replayed at 1, 2 and 8
// pool threads, must produce identical batch boundaries and bitwise
// identical forecast bytes.
TEST_F(SchedulerTest, ScriptedScheduleIsByteIdenticalAcrossThreadCounts) {
  struct Run {
    std::vector<std::vector<double>> bytes;
    uint64_t batches = 0;
    uint64_t executed = 0;
  };
  auto run_schedule = [&](int64_t num_threads) {
    common::ThreadPool::SetGlobalNumThreads(num_threads);
    // Budget == max_batch: a batch's concurrent pins always fit (no
    // spurious exhaustion at high thread counts), while the 4th distinct
    // id still forces evictions mid-schedule.
    ModelStoreOptions store_options;
    store_options.max_resident_models = 3;
    ModelStore store = OpenStoreOrDie(store_options);
    tensor::InferenceArena arena;
    ManualClock clock;
    SchedulerOptions options;
    options.max_batch = 3;
    options.max_delay_ticks = 2;
    RequestScheduler scheduler(&store, &arena, options, &clock);

    std::vector<RequestTicket> tickets;
    auto submit = [&](const std::string& id) {
      Result<RequestTicket> ticket = scheduler.Submit(RequestFor(id));
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(ticket.value());
    };
    // Scripted: mixes full-batch closes, age closes and a final flush.
    submit("s0");
    submit("s1");
    submit("s2");  // full batch of 3
    scheduler.Pump();
    submit("s3");
    submit("s0");
    clock.Advance(2);  // ages the pair past max_delay_ticks
    scheduler.Pump();
    submit("s1");
    submit("s2");
    submit("s3");
    submit("s1");  // 4 pending: one full batch + a remainder
    scheduler.Flush();

    Run run;
    for (RequestTicket& ticket : tickets) {
      EXPECT_TRUE(ticket.done());
      EXPECT_TRUE(ticket.result().ok()) << ticket.result().status().ToString();
      run.bytes.push_back(ticket.result().value().ToVector());
    }
    run.batches = scheduler.stats().batches;
    run.executed = scheduler.stats().executed;
    EXPECT_GT(store.stats().evictions, 0u);  // the budget really did bind
    return run;
  };

  Run serial = run_schedule(1);
  EXPECT_EQ(serial.executed, 9u);
  EXPECT_EQ(serial.batches, 4u);  // 3-full, 2-aged, 3-full, 1-flushed
  for (int64_t num_threads : {2, 8}) {
    Run parallel = run_schedule(num_threads);
    EXPECT_EQ(parallel.bytes, serial.bytes) << num_threads << " threads";
    EXPECT_EQ(parallel.batches, serial.batches);
    EXPECT_EQ(parallel.executed, serial.executed);
  }
}

// --- Deadlines --------------------------------------------------------------

TEST_F(SchedulerTest, ExpiredRequestIsShedAtBatchCloseNotExecuted) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;  // every Pump closes what is pending
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  ForecastRequest request = RequestFor("s0");
  request.deadline_ticks = 2;
  Result<RequestTicket> ticket = scheduler.Submit(request);
  ASSERT_TRUE(ticket.ok());

  // The deadline is absolute from arrival: arrival tick 0 + 2 = expiry at
  // tick 2, so the request is still live at tick 2 and dead at tick 3.
  // Pump returns 0 — a shed request never occupied a batch slot — but the
  // ticket still completes with a terminal status.
  clock.Advance(3);
  EXPECT_EQ(scheduler.Pump(), 0);
  ASSERT_TRUE(ticket.value().done());
  const Status& status = ticket.value().result().status();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("deadline"), std::string::npos)
      << status.ToString();

  RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.executed, 0u);  // shed, not run
  EXPECT_EQ(stats.failed, 0u);    // expiry is its own bucket
  // Shedding happens before the store is consulted: no cold load was paid
  // for a forecast nobody can use.
  EXPECT_EQ(store.stats().cold_loads, 0u);
  EXPECT_EQ(store.stats().lookups, 0u);
}

TEST_F(SchedulerTest, LiveDeadlineStillServesExactBytes) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  ForecastRequest request = RequestFor("s1");
  request.deadline_ticks = 10;
  Result<RequestTicket> ticket = scheduler.Submit(request);
  ASSERT_TRUE(ticket.ok());
  clock.Advance(10);  // exactly at the expiry tick: still live
  EXPECT_EQ(scheduler.Pump(), 1);
  ASSERT_TRUE(ticket.value().done());
  ASSERT_TRUE(ticket.value().result().ok())
      << ticket.value().result().status().ToString();
  EXPECT_EQ(ticket.value().result().value().ToVector(), expected_->at("s1"));
  EXPECT_EQ(scheduler.stats().expired, 0u);
  EXPECT_EQ(scheduler.stats().executed, 1u);
}

TEST_F(SchedulerTest, MixedBatchShedsOnlyTheExpiredPeer) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  ForecastRequest doomed = RequestFor("s0");
  doomed.deadline_ticks = 1;
  ForecastRequest fine = RequestFor("s2");
  fine.deadline_ticks = 100;
  Result<RequestTicket> doomed_ticket = scheduler.Submit(doomed);
  Result<RequestTicket> fine_ticket = scheduler.Submit(fine);
  Result<RequestTicket> no_deadline_ticket =
      scheduler.Submit(RequestFor("s3"));
  ASSERT_TRUE(doomed_ticket.ok());
  ASSERT_TRUE(fine_ticket.ok());
  ASSERT_TRUE(no_deadline_ticket.ok());

  clock.Advance(2);  // past `doomed`'s expiry, inside `fine`'s
  EXPECT_EQ(scheduler.Pump(), 2);  // the shed peer never reached a batch

  EXPECT_EQ(doomed_ticket.value().result().status().code(),
            StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(fine_ticket.value().result().ok());
  EXPECT_EQ(fine_ticket.value().result().value().ToVector(),
            expected_->at("s2"));
  ASSERT_TRUE(no_deadline_ticket.value().result().ok());
  EXPECT_EQ(no_deadline_ticket.value().result().value().ToVector(),
            expected_->at("s3"));

  RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.executed, 2u);
  // Only the live tenants' snapshots were loaded.
  EXPECT_EQ(store.stats().cold_loads, 2u);
}

TEST_F(SchedulerTest, DeadlineOverflowSaturatesInsteadOfWrapping) {
  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store, nullptr, options, &clock);

  clock.Advance(5);  // nonzero arrival tick so a wrap would land near 0
  ForecastRequest request = RequestFor("s0");
  request.deadline_ticks = ~uint64_t{0};  // arrival + this overflows u64
  Result<RequestTicket> ticket = scheduler.Submit(request);
  ASSERT_TRUE(ticket.ok());
  clock.Advance(1000);
  EXPECT_EQ(scheduler.Pump(), 1);
  ASSERT_TRUE(ticket.value().done());
  ASSERT_TRUE(ticket.value().result().ok())
      << ticket.value().result().status().ToString();
  EXPECT_EQ(scheduler.stats().expired, 0u);
}

TEST_F(SchedulerTest, ExpiredTotalMetricCountsSheds) {
  if (!obs::kMetricsEnabled) GTEST_SKIP();
  obs::Registry& registry = obs::Registry::Global();
  uint64_t expired_before =
      registry.GetCounter("serve.scheduler.expired_total")->value();

  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store, nullptr, options, &clock);
  ForecastRequest request = RequestFor("s0");
  request.deadline_ticks = 1;
  ASSERT_TRUE(scheduler.Submit(request).ok());
  clock.Advance(2);
  EXPECT_EQ(scheduler.Pump(), 0);

  EXPECT_EQ(registry.GetCounter("serve.scheduler.expired_total")->value(),
            expired_before + 1);
}

TEST_F(SchedulerTest, MetricsRecordSchedulerActivity) {
  if (!obs::kMetricsEnabled) GTEST_SKIP();
  obs::Registry& registry = obs::Registry::Global();
  uint64_t submitted_before =
      registry.GetCounter("serve.scheduler.submitted_total")->value();
  uint64_t rejected_before =
      registry.GetCounter("serve.scheduler.rejected_total")->value();
  uint64_t batches_before =
      registry.GetCounter("serve.scheduler.batches_total")->value();

  ModelStore store = OpenStoreOrDie();
  ManualClock clock;
  SchedulerOptions options;
  options.max_queue = 1;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store, nullptr, options, &clock);
  ASSERT_TRUE(scheduler.Submit(RequestFor("s0")).ok());
  EXPECT_FALSE(scheduler.Submit(RequestFor("s1")).ok());
  EXPECT_EQ(scheduler.Pump(), 1);

  EXPECT_EQ(registry.GetCounter("serve.scheduler.submitted_total")->value(),
            submitted_before + 1);
  EXPECT_EQ(registry.GetCounter("serve.scheduler.rejected_total")->value(),
            rejected_before + 1);
  EXPECT_EQ(registry.GetCounter("serve.scheduler.batches_total")->value(),
            batches_before + 1);
  EXPECT_EQ(registry.GetGauge("serve.scheduler.queue_depth")->value(), 0.0);
}

}  // namespace
}  // namespace emaf::serve
