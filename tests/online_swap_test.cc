// Hot-swap suite (ctest labels: online, fast, fault, tsan). Pins the
// ModelStore::Publish/Invalidate/ReloadManifest contracts — retargeting
// serves the new file's exact bytes, in-flight handles finish on the old
// version, the resident-byte accounting survives a swap without leaking,
// the version watermark is monotonic (filename-derived or explicit), a
// malformed MANIFEST rewrite is rejected whole — the publish fault site
// (old version keeps serving), the full OnlinePipeline loop (append ->
// fine-tune -> publish -> swap == cold engine on the new snapshot), and a
// threaded Get-vs-Publish hammer for tsan.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "models/registry.h"
#include "online/observation_log.h"
#include "online/pipeline.h"
#include "online/publisher.h"
#include "serve/model_store.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf {
namespace {

namespace fs = std::filesystem;
using serve::ModelHandle;
using serve::ModelStore;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// Saves a distinct tiny snapshot as `dir/filename` and returns the
// prediction bytes it must serve for TinyWindow().
std::vector<double> SaveDistinctSnapshot(const std::string& dir,
                                         const std::string& filename,
                                         uint64_t seed) {
  models::ModelConfig config = serve::testutil::TinyLstmConfig();
  Rng rng(seed);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  Status saved = models::SaveForecasterSnapshot(model.get(), config,
                                                dir + "/" + filename);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return core::Predict(model.get(), serve::testutil::TinyWindow()).ToVector();
}

std::vector<double> Served(ModelStore& store, const std::string& id) {
  Result<ModelHandle> handle = store.Get(id);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  if (!handle.ok()) return {};
  return core::Predict(handle.value().get(), serve::testutil::TinyWindow())
      .ToVector();
}

TEST(HotSwapTest, PublishRetargetsToNewBytes) {
  const std::string dir = FreshDir("swap_basic");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1", "i2"});
  const std::vector<double> fresh =
      SaveDistinctSnapshot(dir, "i1.v1.snapshot", 4242);
  ASSERT_NE(fresh, expected["i1"]);

  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ModelStore& store = opened.value();
  EXPECT_EQ(Served(store, "i1"), expected["i1"]);
  EXPECT_EQ(store.max_published_version(), 0u);

  ASSERT_TRUE(store.Publish("i1", dir + "/i1.v1.snapshot").ok());
  EXPECT_EQ(Served(store, "i1"), fresh);
  EXPECT_EQ(Served(store, "i2"), expected["i2"]);  // other tenants untouched
  EXPECT_EQ(store.max_published_version(), 1u);  // derived from `.v1`
  EXPECT_EQ(store.snapshot_path("i1").value(), dir + "/i1.v1.snapshot");
  EXPECT_EQ(store.stats().swaps, 1u);
}

TEST(HotSwapTest, InFlightHandleFinishesOnOldVersion) {
  const std::string dir = FreshDir("swap_inflight");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  const std::vector<double> fresh =
      SaveDistinctSnapshot(dir, "i1.v1.snapshot", 4242);

  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  ModelStore& store = opened.value();
  Result<ModelHandle> pinned = store.Get("i1");
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(store.Publish("i1", dir + "/i1.v1.snapshot").ok());
  // The pinned request still sees the old model, bit for bit.
  EXPECT_EQ(core::Predict(pinned.value().get(), serve::testutil::TinyWindow())
                .ToVector(),
            expected["i1"]);
  // A new request cold-loads the new version while the pin is alive.
  EXPECT_EQ(Served(store, "i1"), fresh);
}

TEST(HotSwapTest, ResidentBytesDoNotLeakAcrossSwap) {
  const std::string dir = FreshDir("swap_bytes");
  serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  SaveDistinctSnapshot(dir, "i1.v1.snapshot", 4242);

  Result<ModelStore> swapped = ModelStore::Open(dir);
  ASSERT_TRUE(swapped.ok());
  Served(swapped.value(), "i1");  // old version resident
  ASSERT_TRUE(swapped.value().Publish("i1", dir + "/i1.v1.snapshot").ok());
  Served(swapped.value(), "i1");  // new version resident

  // A store that only ever loaded the new version is the no-leak
  // reference: identical residency, identical accounting.
  Result<ModelStore> reference = ModelStore::Open(dir);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference.value().Publish("i1", dir + "/i1.v1.snapshot").ok());
  Served(reference.value(), "i1");

  EXPECT_EQ(swapped.value().stats().resident_models,
            reference.value().stats().resident_models);
  EXPECT_EQ(swapped.value().stats().resident_bytes,
            reference.value().stats().resident_bytes);
  EXPECT_GT(swapped.value().stats().resident_bytes, 0);
}

TEST(HotSwapTest, PublishRegistersUnknownTenantAndRejectsBadPath) {
  const std::string dir = FreshDir("swap_register");
  serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  const std::vector<double> fresh =
      SaveDistinctSnapshot(dir, "newbie.v3.snapshot", 77);

  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  ModelStore& store = opened.value();
  EXPECT_EQ(store.Get("newbie").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Publish("newbie", dir + "/newbie.v3.snapshot").ok());
  EXPECT_EQ(Served(store, "newbie"), fresh);
  EXPECT_EQ(store.num_known_models(), 2);
  EXPECT_EQ(store.max_published_version(), 3u);

  // A missing file is rejected and the store is unchanged.
  EXPECT_EQ(store.Publish("i1", dir + "/nope.snapshot").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.snapshot_path("i1").value(), dir + "/i1.snapshot");
}

TEST(HotSwapTest, VersionWatermarkIsMonotonic) {
  const std::string dir = FreshDir("swap_watermark");
  serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  SaveDistinctSnapshot(dir, "i1.v2.snapshot", 1);
  SaveDistinctSnapshot(dir, "plain.snapshot", 2);

  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  ModelStore& store = opened.value();
  ASSERT_TRUE(store.Publish("i1", dir + "/i1.v2.snapshot").ok());
  EXPECT_EQ(store.max_published_version(), 2u);
  // Explicit version overrides the filename.
  ASSERT_TRUE(store.Publish("i1", dir + "/plain.snapshot", 9).ok());
  EXPECT_EQ(store.max_published_version(), 9u);
  // A later lower publish never regresses the watermark.
  ASSERT_TRUE(store.Publish("i1", dir + "/i1.v2.snapshot").ok());
  EXPECT_EQ(store.max_published_version(), 9u);
  EXPECT_EQ(store.stats().max_published_version, 9u);
}

TEST(HotSwapTest, InvalidateDropsResidencyOnly) {
  const std::string dir = FreshDir("swap_invalidate");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  ModelStore& store = opened.value();
  EXPECT_FALSE(store.Invalidate("i1"));  // nothing resident yet
  EXPECT_FALSE(store.Invalidate("ghost"));
  Served(store, "i1");
  ASSERT_TRUE(store.resident("i1"));
  EXPECT_TRUE(store.Invalidate("i1"));
  EXPECT_FALSE(store.resident("i1"));
  EXPECT_EQ(store.stats().invalidations, 1u);
  // Overwrite the file in place: the next Get must re-read it.
  const std::vector<double> fresh = SaveDistinctSnapshot(dir, "i1.snapshot", 5);
  EXPECT_TRUE(store.Invalidate("i1") || !store.resident("i1"));
  EXPECT_EQ(Served(store, "i1"), fresh);
  EXPECT_NE(fresh, expected["i1"]);
}

TEST(HotSwapTest, ReloadManifestGrowsAndRejectsMalformedWhole) {
  const std::string dir = FreshDir("swap_manifest");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1", "i2"});
  const std::vector<double> fresh =
      SaveDistinctSnapshot(dir, "i1.v2.snapshot", 4242);

  Result<ModelStore> opened = ModelStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  ModelStore& store = opened.value();
  // No MANIFEST on disk yet.
  EXPECT_EQ(store.ReloadManifest().code(), StatusCode::kNotFound);

  // Rewrite 1: alias a new tenant onto i2's file and bump i1 to v2.
  std::ofstream(dir + "/MANIFEST")
      << "# rewritten\n"
      << "i1\ti1.v2.snapshot\n"
      << "i2\ti2.snapshot\n"
      << "i3\ti2.snapshot\n";
  ASSERT_TRUE(store.ReloadManifest().ok());
  EXPECT_EQ(Served(store, "i1"), fresh);
  EXPECT_EQ(Served(store, "i3"), expected["i2"]);
  EXPECT_EQ(store.max_published_version(), 2u);

  // Rewrite 2: malformed (missing file) — rejected whole, nothing moves.
  std::ofstream(dir + "/MANIFEST") << "i1\tmissing.snapshot\n";
  Status rejected = store.ReloadManifest();
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Served(store, "i1"), fresh);
  EXPECT_EQ(store.snapshot_path("i1").value(), dir + "/i1.v2.snapshot");

  // Ids missing from a rewrite keep serving (the mapping only grows).
  std::ofstream(dir + "/MANIFEST") << "i2\ti2.snapshot\n";
  ASSERT_TRUE(store.ReloadManifest().ok());
  EXPECT_EQ(Served(store, "i1"), fresh);
}

TEST(HotSwapTest, PublishFaultLeavesOldVersionServing) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  const std::string dir = FreshDir("swap_pubfault");
  const std::string logdir = FreshDir("swap_pubfault_log");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1"});

  Result<ModelStore> store = ModelStore::Open(dir);
  Result<online::ObservationLog> log = online::ObservationLog::Open(logdir);
  Result<online::SnapshotPublisher> publisher =
      online::SnapshotPublisher::Open(dir);
  ASSERT_TRUE(store.ok() && log.ok() && publisher.ok());
  for (int64_t t = 0; t < 10; ++t) {
    std::vector<double> row(serve::testutil::kTinyVars);
    for (size_t v = 0; v < row.size(); ++v) {
      row[v] = std::sin(0.4 * static_cast<double>(t)) + static_cast<double>(v);
    }
    ASSERT_TRUE(log.value().Append("i1", row).ok());
  }
  online::OnlinePipelineOptions options;
  options.train.epochs = 2;
  online::OnlinePipeline pipeline(&log.value(), &publisher.value(),
                                  &store.value(), options);

  ASSERT_TRUE(fault::Configure("online.publish/i1=1", 1).ok());
  Result<online::UpdateOutcome> outcome = pipeline.UpdateIndividual("i1");
  ASSERT_TRUE(fault::Configure("", 0).ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  // The refusal left no versioned file, no manifest entry, no swap: the
  // old snapshot keeps serving its exact bytes.
  EXPECT_EQ(publisher.value().latest_version("i1"), 0u);
  EXPECT_FALSE(fs::exists(dir + "/i1.v1.snapshot"));
  EXPECT_EQ(store.value().max_published_version(), 0u);
  EXPECT_EQ(Served(store.value(), "i1"), expected["i1"]);

  // Without the fault the same update lands end to end.
  Result<online::UpdateOutcome> landed = pipeline.UpdateIndividual("i1");
  ASSERT_TRUE(landed.ok()) << landed.status().ToString();
  EXPECT_EQ(landed.value().version, 1u);
  Rng reload_rng(1);
  Result<std::unique_ptr<models::Forecaster>> reloaded =
      models::LoadForecasterSnapshot(landed.value().path, &reload_rng);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(Served(store.value(), "i1"),
            core::Predict(reloaded.value().get(), serve::testutil::TinyWindow())
                .ToVector());
}

TEST(HotSwapTest, PipelineUpdateMatchesColdEngineOnNewSnapshot) {
  const std::string dir = FreshDir("swap_pipeline");
  const std::string logdir = FreshDir("swap_pipeline_log");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1"});

  Result<ModelStore> store = ModelStore::Open(dir);
  Result<online::ObservationLog> log = online::ObservationLog::Open(logdir);
  Result<online::SnapshotPublisher> publisher =
      online::SnapshotPublisher::Open(dir);
  ASSERT_TRUE(store.ok() && log.ok() && publisher.ok());
  for (int64_t t = 0; t < 12; ++t) {
    std::vector<double> row(serve::testutil::kTinyVars);
    for (size_t v = 0; v < row.size(); ++v) {
      row[v] = std::sin(0.3 * static_cast<double>(t) + static_cast<double>(v));
    }
    ASSERT_TRUE(log.value().Append("i1", row).ok());
  }
  online::OnlinePipelineOptions options;
  options.train.epochs = 2;
  online::OnlinePipeline pipeline(&log.value(), &publisher.value(),
                                  &store.value(), options);
  Result<online::UpdateOutcome> outcome = pipeline.UpdateIndividual("i1");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().version, 1u);
  EXPECT_EQ(outcome.value().rows_used, 12);
  // LSTM bakes no graph, so the builder stage is skipped, not failed.
  EXPECT_FALSE(outcome.value().graph_rederived);

  // The swap anchor: what the store now serves is bitwise what a cold
  // engine computes on the published snapshot file.
  Rng rng(1);
  Result<std::unique_ptr<models::Forecaster>> cold =
      models::LoadForecasterSnapshot(outcome.value().path, &rng);
  ASSERT_TRUE(cold.ok());
  const std::vector<double> cold_bytes =
      core::Predict(cold.value().get(), serve::testutil::TinyWindow())
          .ToVector();
  EXPECT_EQ(Served(store.value(), "i1"), cold_bytes);
  EXPECT_NE(cold_bytes, expected["i1"]);  // the fine-tune moved the weights
  EXPECT_EQ(store.value().max_published_version(), 1u);

  // Another process opening the directory converges via the MANIFEST the
  // publisher rewrote.
  Result<ModelStore> replica = ModelStore::Open(dir);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(Served(replica.value(), "i1"), cold_bytes);

  // A second update publishes v2, never regressing.
  Result<online::UpdateOutcome> second = pipeline.UpdateIndividual("i1");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().version, 2u);
}

// tsan hammer: readers Get+Predict in a loop while Publish lands. Every
// observed prediction must be bitwise one of {old, new}, and after the
// swap the store settles on the new bytes.
TEST(HotSwapTest, ConcurrentGetsDuringPublishServeExactlyOneVersion) {
  const std::string dir = FreshDir("swap_race");
  auto expected = serve::testutil::MakeTinySnapshotDir(dir, {"i1"});
  const std::vector<double> fresh =
      SaveDistinctSnapshot(dir, "i1.v1.snapshot", 4242);

  for (int num_threads : {1, 2, 8}) {
    Result<ModelStore> opened = ModelStore::Open(dir);
    ASSERT_TRUE(opened.ok());
    ModelStore& store = opened.value();
    std::atomic<bool> stop{false};
    std::atomic<int64_t> mixed{0};
    std::vector<std::thread> readers;
    readers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          Result<ModelHandle> handle = store.Get("i1");
          if (!handle.ok()) {
            mixed.fetch_add(1);
            return;
          }
          const std::vector<double> bytes =
              core::Predict(handle.value().get(), serve::testutil::TinyWindow())
                  .ToVector();
          if (bytes != expected["i1"] && bytes != fresh) mixed.fetch_add(1);
        }
      });
    }
    ASSERT_TRUE(store.Publish("i1", dir + "/i1.v1.snapshot").ok());
    // Let readers race the cold load of the new version for a moment.
    for (int spin = 0; spin < 50; ++spin) Served(store, "i1");
    stop.store(true);
    for (std::thread& reader : readers) reader.join();
    EXPECT_EQ(mixed.load(), 0) << num_threads << " threads";
    EXPECT_EQ(Served(store, "i1"), fresh);
  }
}

}  // namespace
}  // namespace emaf
