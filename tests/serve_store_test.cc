// ModelStore unit + concurrency + fault suite (ctest labels: store, fast,
// tsan, fault). Covers lazy loading, LRU eviction under model/byte
// budgets, pin semantics (kResourceExhausted only when nothing is
// evictable), the v1-snapshot error contract, fault injection on load and
// evict with per-tenant isolation, eviction-then-reload byte identity,
// and an 8-thread get/evict/reload hammer (no use-after-evict: handles
// pin and co-own their model).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "models/registry.h"
#include "nn/serialize.h"
#include "serve/model_store.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using testutil::MakeTinySnapshotDir;
using testutil::TinyWindow;

const std::vector<std::string>& Ids() {
  static const std::vector<std::string> ids = {"i0", "i1", "i2",
                                               "i3", "i4", "i5"};
  return ids;
}

class ModelStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/model_store_snapshots");
    expected_ = new std::map<std::string, std::vector<double>>(
        MakeTinySnapshotDir(*dir_, Ids()));
    window_ = new tensor::Tensor(TinyWindow());
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete window_;
    window_ = nullptr;
    delete expected_;
    expected_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static ModelStore OpenOrDie(const ModelStoreOptions& options = {}) {
    Result<ModelStore> store = ModelStore::Open(*dir_, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  // Serves one request and checks the bytes against the ground truth.
  static void ExpectServesExact(ModelStore& store, const std::string& id) {
    Result<ModelHandle> handle = store.Get(id);
    ASSERT_TRUE(handle.ok()) << id << ": " << handle.status().ToString();
    EXPECT_EQ(core::Predict(handle.value().get(), *window_).ToVector(),
              expected_->at(id))
        << id;
  }

  static std::string* dir_;
  static std::map<std::string, std::vector<double>>* expected_;
  static tensor::Tensor* window_;
};

std::string* ModelStoreTest::dir_ = nullptr;
std::map<std::string, std::vector<double>>* ModelStoreTest::expected_ =
    nullptr;
tensor::Tensor* ModelStoreTest::window_ = nullptr;

TEST_F(ModelStoreTest, OpenListsWithoutLoading) {
  ModelStore store = OpenOrDie();
  EXPECT_EQ(store.num_known_models(), 6);
  EXPECT_EQ(store.individual_ids(), Ids());
  for (const std::string& id : Ids()) {
    EXPECT_FALSE(store.resident(id)) << id;
  }
  ModelStore::Stats stats = store.stats();
  EXPECT_EQ(stats.cold_loads, 0u);
  EXPECT_EQ(stats.resident_models, 0);
  EXPECT_EQ(stats.resident_bytes, 0);
}

TEST_F(ModelStoreTest, MissingAndEmptyDirectoriesAreNotFound) {
  EXPECT_EQ(ModelStore::Open("/nonexistent/snapshots").status().code(),
            StatusCode::kNotFound);
  std::string empty_dir = ::testing::TempDir() + "/model_store_empty";
  std::filesystem::create_directories(empty_dir);
  EXPECT_EQ(ModelStore::Open(empty_dir).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ModelStoreTest, UnknownIdIsNotFound) {
  ModelStore store = OpenOrDie();
  EXPECT_EQ(store.Get("stranger").status().code(), StatusCode::kNotFound);
}

TEST_F(ModelStoreTest, LazyColdLoadThenWarmHit) {
  ModelStore store = OpenOrDie();
  ExpectServesExact(store, "i0");
  EXPECT_TRUE(store.resident("i0"));
  ModelStore::Stats after_cold = store.stats();
  EXPECT_EQ(after_cold.cold_loads, 1u);
  EXPECT_EQ(after_cold.warm_hits, 0u);
  EXPECT_EQ(after_cold.resident_models, 1);
  EXPECT_GT(after_cold.resident_bytes, 0);

  ExpectServesExact(store, "i0");
  ModelStore::Stats after_warm = store.stats();
  EXPECT_EQ(after_warm.cold_loads, 1u);  // no second disk load
  EXPECT_EQ(after_warm.warm_hits, 1u);
}

TEST_F(ModelStoreTest, EvictsLeastRecentlyUsedIdleModel) {
  ModelStoreOptions options;
  options.max_resident_models = 2;
  ModelStore store = OpenOrDie(options);
  ExpectServesExact(store, "i0");
  ExpectServesExact(store, "i1");
  EXPECT_EQ(store.stats().evictions, 0u);

  // Third load exceeds the budget; i0 is the least recently used.
  ExpectServesExact(store, "i2");
  EXPECT_FALSE(store.resident("i0"));
  EXPECT_TRUE(store.resident("i1"));
  EXPECT_TRUE(store.resident("i2"));
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().resident_models, 2);

  // Touching i1 makes i2 the LRU victim for the next load.
  ExpectServesExact(store, "i1");
  ExpectServesExact(store, "i3");
  EXPECT_TRUE(store.resident("i1"));
  EXPECT_FALSE(store.resident("i2"));
  EXPECT_TRUE(store.resident("i3"));
  EXPECT_EQ(store.stats().evictions, 2u);
}

TEST_F(ModelStoreTest, PinnedModelsAreNeverEvicted) {
  ModelStoreOptions options;
  options.max_resident_models = 1;
  ModelStore store = OpenOrDie(options);
  Result<ModelHandle> pinned = store.Get("i0");
  ASSERT_TRUE(pinned.ok());

  // The only resident model is pinned: nothing evictable, so the budget
  // check must reject rather than evict-in-use or block.
  Result<ModelHandle> second = store.Get("i1");
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(store.stats().exhausted, 1u);
  EXPECT_TRUE(store.resident("i0"));

  // The pinned handle still serves correct bytes after the rejection.
  EXPECT_EQ(core::Predict(pinned.value().get(), *window_).ToVector(),
            expected_->at("i0"));

  // Releasing the pin makes i0 evictable and i1 loadable.
  pinned = Result<ModelHandle>(ModelHandle());
  ExpectServesExact(store, "i1");
  EXPECT_FALSE(store.resident("i0"));
  EXPECT_TRUE(store.resident("i1"));
}

TEST_F(ModelStoreTest, EvictionThenReloadIsByteIdentical) {
  ModelStoreOptions options;
  options.max_resident_models = 1;
  ModelStore constrained = OpenOrDie(options);
  ModelStore never_evicted = OpenOrDie();  // unconstrained reference

  Result<ModelHandle> reference = never_evicted.Get("i0");
  ASSERT_TRUE(reference.ok());
  std::vector<double> reference_bytes =
      core::Predict(reference.value().get(), *window_).ToVector();

  ExpectServesExact(constrained, "i0");
  ExpectServesExact(constrained, "i1");  // evicts i0
  EXPECT_FALSE(constrained.resident("i0"));
  Result<ModelHandle> reloaded = constrained.Get("i0");  // reload from disk
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(constrained.stats().evictions, 2u);
  // A reloaded model forecasts bit-identically to one never evicted.
  EXPECT_EQ(core::Predict(reloaded.value().get(), *window_).ToVector(),
            reference_bytes);
}

TEST_F(ModelStoreTest, ByteBudgetBoundsResidency) {
  int64_t snapshot_bytes = static_cast<int64_t>(
      std::filesystem::file_size(*dir_ + "/i0.snapshot"));
  ASSERT_GT(snapshot_bytes, 0);
  ModelStoreOptions options;
  options.max_resident_bytes = snapshot_bytes + snapshot_bytes / 2;  // one fits
  ModelStore store = OpenOrDie(options);
  ExpectServesExact(store, "i0");
  ExpectServesExact(store, "i1");
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().resident_models, 1);
  EXPECT_LE(store.stats().resident_bytes, options.max_resident_bytes);
}

TEST_F(ModelStoreTest, EvictIdleShedsEverythingUnpinned) {
  ModelStore store = OpenOrDie();
  ExpectServesExact(store, "i0");
  ExpectServesExact(store, "i1");
  ExpectServesExact(store, "i2");
  Result<ModelHandle> pinned = store.Get("i3");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(store.EvictIdle(), 3);  // everything but the pinned one
  EXPECT_EQ(store.stats().resident_models, 1);
  EXPECT_TRUE(store.resident("i3"));
  EXPECT_EQ(store.EvictIdle(), 0);
}

TEST_F(ModelStoreTest, MetricsRecordColdLoadsAndEvictions) {
  if (!obs::kMetricsEnabled) GTEST_SKIP();
  obs::Registry& registry = obs::Registry::Global();
  uint64_t cold_before =
      registry.GetCounter("serve.store.cold_loads_total")->value();
  uint64_t evictions_before =
      registry.GetCounter("serve.store.evictions_total")->value();
  ModelStoreOptions options;
  options.max_resident_models = 1;
  ModelStore store = OpenOrDie(options);
  ExpectServesExact(store, "i0");
  ExpectServesExact(store, "i1");  // evicts i0
  ExpectServesExact(store, "i1");  // warm
  EXPECT_EQ(registry.GetCounter("serve.store.cold_loads_total")->value(),
            cold_before + 2);
  EXPECT_EQ(registry.GetCounter("serve.store.evictions_total")->value(),
            evictions_before + 1);
  EXPECT_EQ(registry.GetGauge("serve.store.resident_models")->value(), 1.0);
  double hit_rate = registry.GetGauge("serve.store.hit_rate")->value();
  EXPECT_GT(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_GE(registry
                .GetHistogram("serve.store.cold_load_seconds",
                              obs::DefaultSecondsBounds())
                ->count(),
            2u);
  EXPECT_GE(registry
                .GetHistogram("serve.store.warm_acquire_seconds",
                              obs::DefaultSecondsBounds())
                ->count(),
            1u);
}

TEST_F(ModelStoreTest, V1SnapshotIsRejectedNamingFileAndVersion) {
  // Build a directory holding a v1 (config-less) snapshot via byte
  // surgery: strip the config-length field and patch the version word.
  std::string v1_dir = ::testing::TempDir() + "/model_store_v1";
  std::filesystem::remove_all(v1_dir);
  ASSERT_TRUE(std::filesystem::create_directories(v1_dir));
  models::ModelConfig config = testutil::TinyLstmConfig();
  Rng rng(7);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  std::string v2_path = v1_dir + "/tmp_v2.bin";
  ASSERT_TRUE(nn::SaveParameters(model.get(), v2_path).ok());
  std::string v2_bytes;
  {
    std::ifstream in(v2_path, std::ios::binary);
    v2_bytes.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  std::filesystem::remove(v2_path);
  std::string v1_path = v1_dir + "/legacy.snapshot";
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out << v2_bytes.substr(0, 4);
    uint32_t version = nn::kSnapshotVersionParamsOnly;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out << v2_bytes.substr(16);  // skip v2's version + (zero) config_len
  }

  Result<ModelStore> store = ModelStore::Open(v1_dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<ModelHandle> handle = store.value().Get("legacy");
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending file and both versions involved.
  EXPECT_NE(handle.status().message().find(v1_path), std::string::npos)
      << handle.status().message();
  EXPECT_NE(handle.status().message().find("v1"), std::string::npos);
  EXPECT_NE(handle.status().message().find("v2"), std::string::npos);
  EXPECT_EQ(store.value().stats().load_failures, 1u);
  std::filesystem::remove_all(v1_dir);
}

TEST_F(ModelStoreTest, LoadFaultDegradesOnlyThatTenant) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  ModelStore store = OpenOrDie();
  ASSERT_TRUE(fault::Configure("serve.store.load/i2=1", 1).ok());
  Result<ModelHandle> faulted = store.Get("i2");
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.stats().load_failures, 1u);
  // Other tenants are unaffected by i2's failure.
  ExpectServesExact(store, "i0");
  ExpectServesExact(store, "i3");
  ASSERT_TRUE(fault::Configure("", 0).ok());
  // The fault was transient: the same tenant recovers on retry.
  ExpectServesExact(store, "i2");
}

TEST_F(ModelStoreTest, EvictFaultMakesVictimTemporarilyUnevictable) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  ModelStoreOptions options;
  options.max_resident_models = 1;
  ModelStore store = OpenOrDie(options);
  ExpectServesExact(store, "i0");
  // With the only candidate's eviction fault-blocked, the budget cannot
  // be met: the load is rejected, and i0 stays resident and servable.
  ASSERT_TRUE(fault::Configure("serve.store.evict/i0=1", 1).ok());
  Result<ModelHandle> blocked = store.Get("i1");
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(store.resident("i0"));
  EXPECT_EQ(store.stats().evictions, 0u);
  ASSERT_TRUE(fault::Configure("", 0).ok());
  ExpectServesExact(store, "i1");
  EXPECT_EQ(store.stats().evictions, 1u);
}

// 8 threads hammer a 2-model-budget store over 6 ids with interleaved
// explicit evictions. Pinned handles make use-after-evict impossible; a
// Get may fail with kResourceExhausted when all residents are pinned by
// other threads (more concurrent pins than budget), and every successful
// request must serve exact bytes.
TEST_F(ModelStoreTest, ConcurrentGetEvictReloadServesExactBytes) {
  if (fault::kFaultInjectionEnabled) {
    ASSERT_TRUE(fault::Configure("", 0).ok());
  }
  ModelStoreOptions options;
  options.max_resident_models = 2;
  ModelStore store = OpenOrDie(options);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 25;
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> exhausted{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(0xC0FFEE + static_cast<uint64_t>(t));
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const std::string& id =
            Ids()[rng.UniformInt(0, static_cast<int64_t>(Ids().size()) - 1)];
        Result<ModelHandle> handle = store.Get(id);
        if (!handle.ok()) {
          if (handle.status().code() != StatusCode::kResourceExhausted) {
            failed.store(true);
          }
          exhausted.fetch_add(1);
          continue;
        }
        std::vector<double> bytes =
            core::Predict(handle.value().get(), *window_).ToVector();
        if (bytes != expected_->at(id)) failed.store(true);
        served.fetch_add(1);
        if (iter % 5 == 0) store.EvictIdle(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed.load()) << "wrong bytes or unexpected status";
  EXPECT_GT(served.load(), 0);
  ModelStore::Stats stats = store.stats();
  EXPECT_EQ(stats.warm_hits + stats.cold_loads,
            static_cast<uint64_t>(served.load()));
  EXPECT_LE(stats.resident_models, 2);
  // After the storm every tenant still serves exact bytes serially.
  for (const std::string& id : Ids()) ExpectServesExact(store, id);
}

}  // namespace
}  // namespace emaf::serve
