// Swap-under-load soak (ctest labels: online, soak, tsan, fast): client
// threads pipeline forecasts against a live loopback server while
// ModelStore::Publish retargets the tenant mid-traffic. The zero-downtime
// invariant, checked for 1/2/8 threads:
//
//   - every reply is bitwise identical to exactly ONE of {old, new}
//     ground truth — never a mix, never anything else;
//   - every request id gets exactly one reply — none dropped, none
//     duplicated (each client's pending set catches both);
//   - traffic genuinely straddles the swap: every thread completes
//     bursts both before and after Publish, so old- and new-version
//     replies are both observed;
//   - after quiescing, the store serves the new bytes, the health probe
//     reports the published version, and EvictIdle drains residency to
//     zero — no request leaked a pin across the swap.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/evaluator.h"
#include "models/registry.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

namespace fs = std::filesystem;

constexpr char kTenant[] = "s0";

// Saves a distinct tiny snapshot as `dir/filename` and returns its
// ground-truth prediction bytes for TinyWindow().
std::vector<double> SaveDistinctSnapshot(const std::string& dir,
                                         const std::string& filename,
                                         uint64_t seed) {
  models::ModelConfig config = testutil::TinyLstmConfig();
  Rng rng(seed);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  Status saved = models::SaveForecasterSnapshot(model.get(), config,
                                                dir + "/" + filename);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return core::Predict(model.get(), testutil::TinyWindow()).ToVector();
}

class OnlineSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/online_soak_snapshots");
    expected_old_ = new std::vector<double>(
        testutil::MakeTinySnapshotDir(*dir_, {kTenant}).at(kTenant));
    expected_new_ = new std::vector<double>(
        SaveDistinctSnapshot(*dir_, StrCat(kTenant, ".v1.snapshot"), 4242));
    window_ = new tensor::Tensor(testutil::TinyWindow());
    ASSERT_NE(*expected_old_, *expected_new_);
  }
  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete window_;
    window_ = nullptr;
    delete expected_new_;
    expected_new_ = nullptr;
    delete expected_old_;
    expected_old_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  // One swap-under-load round at `num_threads` pipelining clients.
  void RunRound(int num_threads) {
    SCOPED_TRACE(StrCat(num_threads, " threads"));
    Result<Server> started = Server::Start(*dir_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    Server server = std::move(started).value();

    std::atomic<bool> stop{false};
    std::atomic<bool> published{false};
    std::atomic<int64_t> failures{0};
    std::vector<std::atomic<int64_t>> bursts_before(
        static_cast<size_t>(num_threads));
    std::vector<std::atomic<int64_t>> bursts_after(
        static_cast<size_t>(num_threads));
    std::atomic<uint64_t> old_replies{0};
    std::atomic<uint64_t> new_replies{0};
    std::atomic<uint64_t> total_replies{0};

    auto worker = [&](int index) {
      ClientOptions options;
      options.recv_timeout_ms = 10000;  // a hang fails the soak
      Result<Client> connected = Client::Connect(server.port(), options);
      if (!connected.ok()) {
        failures.fetch_add(1);
        return;
      }
      Client client = std::move(connected).value();
      constexpr int64_t kBurst = 4;
      for (int64_t burst = 0; burst < 100000; ++burst) {
        if (stop.load(std::memory_order_acquire)) break;
        const bool after = published.load(std::memory_order_acquire);
        // Pipeline a burst, then match every reply by id: a duplicate or
        // unknown id, a dropped reply (timeout), or foreign bytes all
        // count as failures.
        std::set<uint64_t> pending;
        for (int64_t i = 0; i < kBurst; ++i) {
          Result<uint64_t> id = client.SendForecastRequest(kTenant, *window_);
          if (!id.ok() || !pending.insert(id.value()).second) {
            failures.fetch_add(1);
            return;
          }
        }
        while (!pending.empty()) {
          Result<Frame> reply = client.ReadFrame();
          if (!reply.ok()) {
            failures.fetch_add(1);
            return;
          }
          if (pending.erase(reply.value().request_id) != 1 ||
              reply.value().type != FrameType::kForecastResponse) {
            failures.fetch_add(1);
            return;
          }
          Result<tensor::Tensor> forecast =
              DecodeTensorPayload(reply.value().payload);
          if (!forecast.ok()) {
            failures.fetch_add(1);
            return;
          }
          const std::vector<double> bytes = forecast.value().ToVector();
          total_replies.fetch_add(1);
          if (bytes == *expected_old_) {
            old_replies.fetch_add(1);
          } else if (bytes == *expected_new_) {
            new_replies.fetch_add(1);
          } else {
            failures.fetch_add(1);  // mixed or foreign version
            return;
          }
        }
        if (after) {
          bursts_after[static_cast<size_t>(index)].fetch_add(1);
        } else {
          bursts_before[static_cast<size_t>(index)].fetch_add(1);
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);

    auto all_at_least = [&](std::vector<std::atomic<int64_t>>& counts,
                            int64_t floor) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (std::chrono::steady_clock::now() < deadline) {
        bool all = true;
        for (auto& count : counts) {
          if (count.load() < floor) all = false;
        }
        if (all || failures.load() > 0) return all;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return false;
    };

    // Every thread serves old-version traffic first, then the swap lands
    // mid-stream, then every thread serves new-version traffic.
    EXPECT_TRUE(all_at_least(bursts_before, 2)) << "pre-swap traffic stalled";
    ASSERT_TRUE(
        server.store().Publish(kTenant, *dir_ + "/s0.v1.snapshot").ok());
    published.store(true, std::memory_order_release);
    EXPECT_TRUE(all_at_least(bursts_after, 2)) << "post-swap traffic stalled";
    stop.store(true, std::memory_order_release);
    for (std::thread& thread : threads) thread.join();

    EXPECT_EQ(failures.load(), 0)
        << "a reply was dropped, duplicated, or not bitwise one version";
    EXPECT_GT(old_replies.load(), 0u);
    EXPECT_GT(new_replies.load(), 0u);
    EXPECT_EQ(total_replies.load(), old_replies.load() + new_replies.load());

    // Quiesced: the server now serves exactly the new bytes, the health
    // probe carries the published version, and nothing leaked a pin.
    Result<Client> checker = Client::Connect(server.port());
    ASSERT_TRUE(checker.ok());
    Result<tensor::Tensor> final_forecast =
        checker.value().Forecast(kTenant, *window_);
    ASSERT_TRUE(final_forecast.ok()) << final_forecast.status().ToString();
    EXPECT_EQ(final_forecast.value().ToVector(), *expected_new_);
    Result<HealthInfo> health = checker.value().Health();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health.value().max_published_version, 1u);
    EXPECT_EQ(server.store().stats().swaps, 1u);
    const auto evict_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    int64_t resident = -1;
    while (true) {
      server.store().EvictIdle(-1);
      resident = server.store().stats().resident_models;
      if (resident == 0 || std::chrono::steady_clock::now() >= evict_deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(resident, 0) << "a pin leaked across the swap";
    server.Stop();
  }

  static std::string* dir_;
  static std::vector<double>* expected_old_;
  static std::vector<double>* expected_new_;
  static tensor::Tensor* window_;
};

std::string* OnlineSoakTest::dir_ = nullptr;
std::vector<double>* OnlineSoakTest::expected_old_ = nullptr;
std::vector<double>* OnlineSoakTest::expected_new_ = nullptr;
tensor::Tensor* OnlineSoakTest::window_ = nullptr;

TEST_F(OnlineSoakTest, SwapUnderLoadServesExactlyOneVersionPerReply) {
  for (int num_threads : {1, 2, 8}) {
    RunRound(num_threads);
    if (HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace emaf::serve
