// Golden IR gate for compiled plans: the text disassembly of a seeded
// LSTM plan and a seeded MTGNN plan must match tests/golden/plan_lstm.txt
// and tests/golden/plan_mtgnn.txt BYTE FOR BYTE. Instruction selection,
// constant folding, fusion grouping and register/release assignment all
// land in these bytes, so compiler drift is a reviewable diff instead of
// a silent perf (or correctness) change.
//
// Updating after an intentional compiler change:
//   ./plan_disassembly_test --update-golden
// or EMAF_UPDATE_GOLDEN=1, then commit the rewritten files.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "plan/disassembler.h"
#include "plan/recorder.h"
#include "tensor/tensor.h"

namespace emaf::plan {

bool update_golden = false;  // set by main() below

namespace {

using tensor::Shape;
using tensor::Tensor;

#ifndef EMAF_GOLDEN_DIR
#error "tests/CMakeLists.txt must define EMAF_GOLDEN_DIR"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(EMAF_GOLDEN_DIR) + "/plan_" + name + ".txt";
}

std::string ReadGolden(const std::string& name) {
  std::ifstream in(GoldenPath(name), std::ios::binary);
  if (!in.is_open()) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Same tiny geometry the serving tests use (5 variables, 3 steps), fixed
// forever: these plans exist to pin the compiler, not the models.
models::ModelConfig GoldenConfig(const std::string& family) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = 5;
  config.input_length = 3;
  config.lstm.hidden_units = 8;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family == "MTGNN") {
    graph::AdjacencyMatrix adjacency(5);
    for (int64_t i = 0; i + 1 < 5; ++i) {
      adjacency.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
      adjacency.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
    }
    config.adjacency = adjacency;
  }
  return config;
}

void CheckGolden(const std::string& family, const std::string& name) {
  models::ModelConfig config = GoldenConfig(family);
  Rng rng(2024);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  Rng window_rng(20240806);
  Tensor window = Tensor::Uniform(Shape{2, 3, 5}, -1, 1, &window_rng);

  Result<std::shared_ptr<const Plan>> compiled = Compile(model.get(), window);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::string text = Disassemble(*compiled.value());

  if (update_golden) {
    std::ofstream out(GoldenPath(name), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath(name);
    out << text;
    ASSERT_TRUE(out.good());
    std::cout << "[golden] rewrote " << GoldenPath(name) << "\n";
  }
  std::string golden = ReadGolden(name);
  ASSERT_FALSE(golden.empty())
      << "missing " << GoldenPath(name)
      << " — run ./plan_disassembly_test --update-golden and commit it";
  EXPECT_EQ(text, golden) << family
                          << " plan disassembly diverged from golden file";
}

TEST(PlanDisassembly, LstmMatchesGolden) { CheckGolden("LSTM", "lstm"); }

TEST(PlanDisassembly, MtgnnMatchesGolden) { CheckGolden("MTGNN", "mtgnn"); }

// Compiling the same model twice must produce identical text — the
// disassembly (and thus the golden gate) is deterministic by design.
TEST(PlanDisassembly, Deterministic) {
  models::ModelConfig config = GoldenConfig("LSTM");
  Rng rng(2024);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  Rng window_rng(20240806);
  Tensor window = Tensor::Uniform(Shape{2, 3, 5}, -1, 1, &window_rng);
  Result<std::shared_ptr<const Plan>> first = Compile(model.get(), window);
  Result<std::shared_ptr<const Plan>> second = Compile(model.get(), window);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Disassemble(*first.value()), Disassemble(*second.value()));
}

}  // namespace
}  // namespace emaf::plan

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      emaf::plan::update_golden = true;
    }
  }
  const char* env = std::getenv("EMAF_UPDATE_GOLDEN");
  if (env != nullptr && std::string(env) == "1") {
    emaf::plan::update_golden = true;
  }
  return RUN_ALL_TESTS();
}
