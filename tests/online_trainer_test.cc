// OnlineTrainer suite (ctest labels: online, fast, fault). Pins the
// warm-start contract (fine-tune starts from the snapshot's weights and
// is bit-deterministic), the cross-graph warm start (adjacency swapped in
// the config, parameters still load by name/shape), the refusal codes
// (unreadable config, width mismatch, too few rows, wrong-size
// adjacency), the divergence-refusal policy (every attempt diverges ->
// kAborted, nothing usable returned), and the online.train fault site.

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "online/online_trainer.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::online {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// [rows, vars] of a smooth signal the few-epoch fine-tune can descend on.
tensor::Tensor WindowData(int64_t rows, int64_t vars) {
  tensor::Tensor data = tensor::Tensor::Zeros(tensor::Shape{rows, vars});
  for (int64_t t = 0; t < rows; ++t) {
    for (int64_t v = 0; v < vars; ++v) {
      data.data()[t * vars + v] =
          std::sin(0.4 * static_cast<double>(t) + static_cast<double>(v));
    }
  }
  return data;
}

graph::AdjacencyMatrix Ring(int64_t nodes) {
  graph::AdjacencyMatrix adjacency(nodes);
  for (int64_t i = 0; i < nodes; ++i) {
    const int64_t j = (i + 1) % nodes;
    adjacency.set(i, j, 1.0);
    adjacency.set(j, i, 1.0);
  }
  return adjacency;
}

// Saves one untrained snapshot of `config` and returns its path.
std::string SaveSnapshot(const std::string& dir, const std::string& name,
                         const models::ModelConfig& config, uint64_t seed) {
  Rng rng(seed);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  const std::string path = dir + "/" + name + ".snapshot";
  Status saved = models::SaveForecasterSnapshot(model.get(), config, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return path;
}

OnlineTrainOptions QuickOptions() {
  OnlineTrainOptions options;
  options.epochs = 3;
  options.learning_rate = 0.001;
  return options;
}

TEST(OnlineTrainerTest, WarmStartIsDeterministic) {
  const std::string dir = FreshDir("otrain_det");
  const std::string path =
      SaveSnapshot(dir, "p01", serve::testutil::TinyLstmConfig(), 7);
  const tensor::Tensor data = WindowData(10, serve::testutil::kTinyVars);
  OnlineTrainer a(QuickOptions());
  OnlineTrainer b(QuickOptions());
  Result<FineTuneResult> ra = a.FineTune("p01", path, data);
  Result<FineTuneResult> rb = b.FineTune("p01", path, data);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra.value().attempts, 1);
  EXPECT_FALSE(ra.value().train.diverged);
  ASSERT_EQ(ra.value().train.epoch_losses.size(), 3u);
  EXPECT_EQ(ra.value().train.epoch_losses, rb.value().train.epoch_losses);
  const tensor::Tensor window = serve::testutil::TinyWindow();
  EXPECT_EQ(core::Predict(ra.value().model.get(), window).ToVector(),
            core::Predict(rb.value().model.get(), window).ToVector());
}

TEST(OnlineTrainerTest, WarmStartActuallyStartsFromSnapshot) {
  const std::string dir = FreshDir("otrain_warm");
  const models::ModelConfig config = serve::testutil::TinyLstmConfig();
  const std::string path = SaveSnapshot(dir, "p02", config, 7);
  const tensor::Tensor data = WindowData(10, serve::testutil::kTinyVars);
  // Zero epochs: the "fine-tuned" model must predict exactly what the
  // snapshot predicts — the strongest possible warm-start witness.
  OnlineTrainOptions options = QuickOptions();
  options.epochs = 0;
  OnlineTrainer trainer(options);
  Result<FineTuneResult> result = trainer.FineTune("p02", path, data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Rng rng(99);
  Result<std::unique_ptr<models::Forecaster>> loaded =
      models::LoadForecasterSnapshot(path, &rng);
  ASSERT_TRUE(loaded.ok());
  const tensor::Tensor window = serve::testutil::TinyWindow();
  EXPECT_EQ(core::Predict(result.value().model.get(), window).ToVector(),
            core::Predict(loaded.value().get(), window).ToVector());
}

TEST(OnlineTrainerTest, SwapsAdjacencyForGraphFamilies) {
  const std::string dir = FreshDir("otrain_adj");
  models::ModelConfig config;
  config.family = "A3TGCN";
  config.num_variables = 3;
  config.input_length = 2;
  config.a3tgcn.hidden_units = 4;
  config.a3tgcn.dropout = 0.0;
  config.adjacency = Ring(3);
  const std::string path = SaveSnapshot(dir, "p03", config, 11);
  const tensor::Tensor data = WindowData(10, 3);

  graph::AdjacencyMatrix fresh(3);
  fresh.set(0, 2, 0.7);
  fresh.set(2, 0, 0.7);
  OnlineTrainer trainer(QuickOptions());
  Result<FineTuneResult> swapped = trainer.FineTune("p03", path, data, fresh);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(swapped.value().config.adjacency.has_value());
  EXPECT_TRUE(*swapped.value().config.adjacency == fresh);
  // The swapped graph changes the baked operator, so the fine-tuned model
  // differs from one fine-tuned on the snapshot's own graph.
  Result<FineTuneResult> kept = trainer.FineTune("p03", path, data);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(kept.value().config.adjacency.has_value());
  EXPECT_TRUE(*kept.value().config.adjacency == Ring(3));
  const tensor::Tensor window = serve::testutil::TinyWindow();
  EXPECT_NE(core::Predict(swapped.value().model.get(), window).ToVector(),
            core::Predict(kept.value().model.get(), window).ToVector());

  // Wrong-size adjacency is rejected before any training.
  Result<FineTuneResult> bad = trainer.FineTune("p03", path, data, Ring(4));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(OnlineTrainerTest, IgnoresAdjacencyForGraphlessFamilies) {
  const std::string dir = FreshDir("otrain_lstm_adj");
  const std::string path =
      SaveSnapshot(dir, "p04", serve::testutil::TinyLstmConfig(), 7);
  const tensor::Tensor data = WindowData(10, serve::testutil::kTinyVars);
  OnlineTrainer trainer(QuickOptions());
  // A wrong-size adjacency is still fine here: LSTM bakes no graph, so
  // the argument must be ignored, not validated.
  Result<FineTuneResult> result = trainer.FineTune("p04", path, data, Ring(5));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().config.adjacency.has_value());
}

TEST(OnlineTrainerTest, RefusalCodes) {
  const std::string dir = FreshDir("otrain_refuse");
  const std::string path =
      SaveSnapshot(dir, "p05", serve::testutil::TinyLstmConfig(), 7);
  OnlineTrainer trainer(QuickOptions());
  // Width mismatch (snapshot has 3 variables).
  EXPECT_EQ(trainer.FineTune("p05", path, WindowData(10, 2)).status().code(),
            StatusCode::kInvalidArgument);
  // Rank mismatch.
  EXPECT_EQ(trainer
                .FineTune("p05", path,
                          tensor::Tensor::Zeros(tensor::Shape{10}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // input_length = 2 needs at least 3 rows for one training window.
  EXPECT_EQ(trainer
                .FineTune("p05", path,
                          WindowData(2, serve::testutil::kTinyVars))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Missing snapshot file.
  EXPECT_FALSE(trainer
                   .FineTune("p05", dir + "/missing.snapshot",
                             WindowData(10, serve::testutil::kTinyVars))
                   .ok());
}

TEST(OnlineTrainerTest, DivergenceIsRefusedNotPublished) {
  const std::string dir = FreshDir("otrain_diverge");
  const std::string path =
      SaveSnapshot(dir, "p06", serve::testutil::TinyLstmConfig(), 7);
  OnlineTrainOptions options;
  options.epochs = 5;
  options.learning_rate = 1e25;  // still absurd after halving retries
  options.max_attempts = 2;
  OnlineTrainer trainer(options);
  Result<FineTuneResult> result =
      trainer.FineTune("p06", path, WindowData(10, serve::testutil::kTinyVars));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("refusing to publish"),
            std::string::npos)
      << result.status().ToString();
}

TEST(OnlineTrainerTest, TrainFaultSiteFailsBeforeWork) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  const std::string dir = FreshDir("otrain_fault");
  const std::string path =
      SaveSnapshot(dir, "p07", serve::testutil::TinyLstmConfig(), 7);
  OnlineTrainer trainer(QuickOptions());
  ASSERT_TRUE(fault::Configure("online.train/p07=1", 1).ok());
  Result<FineTuneResult> faulted =
      trainer.FineTune("p07", path, WindowData(10, serve::testutil::kTinyVars));
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(fault::Configure("", 0).ok());
  Result<FineTuneResult> retried =
      trainer.FineTune("p07", path, WindowData(10, serve::testutil::kTinyVars));
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

}  // namespace
}  // namespace emaf::online
