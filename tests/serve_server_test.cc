// Loopback end-to-end tests for the epoll serving front-end (ISSUE PR-6):
// bytes served over a real socket are bitwise identical to the in-process
// InferenceEngine for every model family at 1, 2 and 8 pool threads; the
// server survives a pathological 1-byte-at-a-time writer, answers
// pipelined requests matched by request id, forgets mid-request
// disconnects without leaking a store pin, and sheds overload with a
// structured kUnavailable instead of hanging or dropping. Fault-gated
// cases drive serve.store.load/<id> and serve.server.accept through the
// server path and pin the batch-peer-isolation contract.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "online/observation_log.h"
#include "serve/client.h"
#include "serve/inference_engine.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 5;
constexpr int64_t kSteps = 3;

models::ModelConfig FamilyConfig(const std::string& family) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 2;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family != "LSTM" && family != "VAR") {
    graph::AdjacencyMatrix adj(kVars);
    for (int64_t i = 0; i + 1 < kVars; ++i) {
      adj.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
      adj.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
    }
    config.adjacency = adj;
  }
  return config;
}

const std::vector<std::string>& AllFamilies() {
  static const std::vector<std::string> families = {"LSTM", "VAR", "A3TGCN",
                                                    "ASTGCN", "MTGNN"};
  return families;
}

// Spin-waits (with a deadline) for an asynchronous server-side condition —
// the loop thread runs on its own cadence.
bool WaitFor(const std::function<bool()>& predicate,
             int64_t timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// One snapshot directory for the whole suite: the five paper families
// (untrained — deterministic construction; byte-identity assertions don't
// care about fit quality) plus a few extra LSTM tenants t0..t3 for the
// multi-tenant cases. Ground truth comes from the in-process
// InferenceEngine on the same directory: the wire must not change a byte.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    namespace fs = std::filesystem;
    dir_ = new std::string(::testing::TempDir() + "/serve_server_snapshots");
    fs::remove_all(*dir_);
    ASSERT_TRUE(fs::create_directories(*dir_));

    std::vector<std::string> ids = AllFamilies();
    for (const std::string& tenant : {"t0", "t1", "t2", "t3"}) {
      ids.push_back(tenant);
    }
    uint64_t seed = 100;
    for (const std::string& id : ids) {
      models::ModelConfig config =
          FamilyConfig(id[0] == 't' ? "LSTM" : id);
      Rng rng(seed++);
      std::unique_ptr<models::Forecaster> model =
          models::CreateForecasterOrDie(config, &rng);
      Status saved = models::SaveForecasterSnapshot(
          model.get(), config, *dir_ + "/" + id + ".snapshot");
      ASSERT_TRUE(saved.ok()) << saved.ToString();
    }

    Rng window_rng(20240808);
    window_ = new Tensor(
        Tensor::Uniform(Shape{1, kSteps, kVars}, -1, 1, &window_rng));

    expected_ = new std::map<std::string, std::vector<double>>();
    Result<InferenceEngine> engine = InferenceEngine::Load(*dir_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const std::string& id : ids) {
      Result<Tensor> forecast = engine.value().Forecast(id, *window_);
      ASSERT_TRUE(forecast.ok()) << id << ": "
                                 << forecast.status().ToString();
      (*expected_)[id] = forecast.value().ToVector();
    }
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete expected_;
    expected_ = nullptr;
    delete window_;
    window_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static Server StartServerOrDie(const ServerOptions& options = {}) {
    Result<Server> server = Server::Start(*dir_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  static Client ConnectOrDie(const Server& server,
                             const ClientOptions& options = {}) {
    Result<Client> client = Client::Connect(server.port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static std::string* dir_;
  static Tensor* window_;
  static std::map<std::string, std::vector<double>>* expected_;
};

std::string* ServerTest::dir_ = nullptr;
Tensor* ServerTest::window_ = nullptr;
std::map<std::string, std::vector<double>>* ServerTest::expected_ = nullptr;

TEST_F(ServerTest, PingPong) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());  // the connection is reusable
}

// The ISSUE acceptance anchor: for every family, the bytes coming back
// over the socket equal the in-process engine's bytes exactly — at 1, 2
// and 8 pool threads. The pool size is set before each server starts so
// the resize never races the live event loop.
TEST_F(ServerTest, ServedBytesMatchEngineForEveryFamilyAtAnyThreadCount) {
  for (int64_t threads : {1, 2, 8}) {
    common::ThreadPool::SetGlobalNumThreads(threads);
    Server server = StartServerOrDie();
    Client client = ConnectOrDie(server);
    for (const std::string& family : AllFamilies()) {
      Result<Tensor> forecast = client.Forecast(family, *window_);
      ASSERT_TRUE(forecast.ok())
          << family << " threads=" << threads << ": "
          << forecast.status().ToString();
      EXPECT_EQ(forecast.value().ToVector(), expected_->at(family))
          << family << " threads=" << threads;
    }
  }
  common::ThreadPool::SetGlobalNumThreads(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
}

// Compiled plans are on by default, so the fixture's ground truth (and
// every other test here) already exercises the plan path over the wire.
// This test flips the execution mode off: the module path must serve the
// very same bytes over loopback — the plans-on/plans-off bitwise contract
// at the outermost layer of the stack.
TEST_F(ServerTest, DisablingCompiledPlansServesIdenticalBytesOverLoopback) {
  ServerOptions options;
  options.scheduler.use_compiled_plans = false;
  Server server = StartServerOrDie(options);
  Client client = ConnectOrDie(server);
  for (const std::string& family : AllFamilies()) {
    Result<Tensor> forecast = client.Forecast(family, *window_);
    ASSERT_TRUE(forecast.ok()) << family << ": "
                               << forecast.status().ToString();
    EXPECT_EQ(forecast.value().ToVector(), expected_->at(family)) << family;
  }
}

// No stale-plan reuse across a snapshot reload, over the wire: after the
// snapshot file changes on disk and the store evicts the tenant, the next
// request must serve the NEW weights' bytes. A plan cache outliving the
// residency would keep answering with the old recorded constants. Uses
// its own snapshot directory so the shared fixture stays immutable.
TEST_F(ServerTest, EvictedTenantReloadsFreshPlanAndServesNewSnapshotBytes) {
  namespace tu = testutil;
  std::string dir = ::testing::TempDir() + "/server_plan_reload_snapshots";
  std::map<std::string, std::vector<double>> old_expected =
      tu::MakeTinySnapshotDir(dir, {"alpha"});
  Tensor window = tu::TinyWindow();

  Result<Server> server = Server::Start(dir);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client = ConnectOrDie(server.value());
  // Two requests: the second is served from the cached plan.
  for (int i = 0; i < 2; ++i) {
    Result<Tensor> served = client.Forecast("alpha", window);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served.value().ToVector(), old_expected.at("alpha"));
  }

  models::ModelConfig config = tu::TinyLstmConfig();
  Rng rng(880088);
  std::unique_ptr<models::Forecaster> fresh =
      models::CreateForecasterOrDie(config, &rng);
  std::vector<double> new_expected =
      core::Predict(fresh.get(), window).ToVector();
  ASSERT_NE(new_expected, old_expected.at("alpha"));
  ASSERT_TRUE(models::SaveForecasterSnapshot(fresh.get(), config,
                                             dir + "/alpha.snapshot")
                  .ok());

  // No requests are in flight, so everything resident is idle-evictable.
  EXPECT_GE(server.value().store().EvictIdle(-1), 1);
  Result<Tensor> reloaded = client.Forecast("alpha", window);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().ToVector(), new_expected)
      << "stale plan served the pre-reload weights over the wire";
  std::filesystem::remove_all(dir);
}

TEST_F(ServerTest, SurvivesAOneByteAtATimeWriter) {
  Server server = StartServerOrDie();
  ClientOptions slow;
  slow.write_chunk_bytes = 1;  // every frame arrives as ~200 separate reads
  Client client = ConnectOrDie(server, slow);
  EXPECT_TRUE(client.Ping().ok());
  Result<Tensor> forecast = client.Forecast("t0", *window_);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().ToVector(), expected_->at("t0"));
}

TEST_F(ServerTest, PipelinedRequestsAreAnsweredAndMatchedById) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  std::map<uint64_t, std::string> sent;  // request id -> tenant
  for (int i = 0; i < 10; ++i) {
    const std::string& tenant = tenants[static_cast<size_t>(i) % 4];
    Result<uint64_t> id = client.SendForecastRequest(tenant, *window_);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(sent.emplace(id.value(), tenant).second);
  }
  for (int i = 0; i < 10; ++i) {
    Result<Frame> reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    ASSERT_EQ(reply.value().type, FrameType::kForecastResponse);
    auto it = sent.find(reply.value().request_id);
    ASSERT_NE(it, sent.end()) << "unknown request id "
                              << reply.value().request_id;
    Result<Tensor> forecast = DecodeTensorPayload(reply.value().payload);
    ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
    EXPECT_EQ(forecast.value().ToVector(), expected_->at(it->second))
        << "tenant " << it->second;
    sent.erase(it);  // every reply matches exactly one request
  }
  EXPECT_TRUE(sent.empty());
}

// Overload contract: with the admission queue capped at 1, a burst of 4
// pipelined requests sent in ONE write meets the queue as one burst — the
// overflow is answered immediately with a structured kUnavailable frame,
// never hung, never dropped.
TEST_F(ServerTest, QueueFullAnswersStructuredUnavailable) {
  ServerOptions options;
  options.scheduler.max_queue = 1;
  Server server = StartServerOrDie(options);
  Client client = ConnectOrDie(server);
  std::string burst;
  constexpr int kBurst = 4;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    Frame frame;
    frame.type = FrameType::kForecastRequest;
    frame.request_id = id;
    frame.tenant_id = "t0";
    frame.payload = EncodeTensorPayload(*window_);
    burst += EncodeFrame(frame);
  }
  ASSERT_TRUE(client.SendBytes(burst).ok());

  int ok = 0, rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<Frame> reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    if (reply.value().type == FrameType::kForecastResponse) {
      Result<Tensor> forecast = DecodeTensorPayload(reply.value().payload);
      ASSERT_TRUE(forecast.ok());
      EXPECT_EQ(forecast.value().ToVector(), expected_->at("t0"));
      ++ok;
    } else {
      ASSERT_EQ(reply.value().type, FrameType::kError);
      Status carried = Status::Ok();
      ASSERT_TRUE(
          DecodeStatusPayload(reply.value().payload, &carried).ok());
      EXPECT_EQ(carried.code(), StatusCode::kUnavailable);
      EXPECT_NE(carried.message().find("rejected"), std::string::npos);
      ++rejected;
    }
  }
  // Every request was answered — the split depends only on read
  // coalescing, so pin the envelope, not the exact split.
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(server.stats().requests_rejected, 1u);
  EXPECT_GE(server.scheduler_stats().rejected, 1u);
}

// A client that vanishes mid-request must not leak residency: its
// admitted request still executes, the result is discarded, and every
// model the request touched is evictable afterwards.
TEST_F(ServerTest, MidRequestDisconnectLeavesTheStoreUnpinned) {
  Server server = StartServerOrDie();
  {
    Client client = ConnectOrDie(server);
    ASSERT_TRUE(client.SendForecastRequest("t2", *window_).ok());
    // Destructor closes the socket with the request possibly still queued.
  }
  ASSERT_TRUE(WaitFor([&] { return server.scheduler_stats().executed >= 1; }))
      << "the orphaned request never executed";
  ASSERT_TRUE(
      WaitFor([&] { return server.stats().active_connections == 0; }));
  // Nothing is pinned: every resident model can be evicted.
  EXPECT_GE(server.store().EvictIdle(-1), 1);
  EXPECT_EQ(server.store().stats().resident_models, 0);
  // And the server is still fully alive for the next client.
  Client next = ConnectOrDie(server);
  Result<Tensor> forecast = next.Forecast("t2", *window_);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().ToVector(), expected_->at("t2"));
}

// Satellite 4 (scheduler error-path): a tenant whose cold load fails via
// fault injection gets its own kUnavailable reply while its batch peers
// are served bitwise-correct bytes — and the failure is visible in the
// scheduler's new `failed` stat instead of vanishing into `executed`.
TEST_F(ServerTest, LoadFaultFailsOneTenantAndLeavesBatchPeersUntouched) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  Server server = StartServerOrDie();
  ASSERT_TRUE(fault::Configure("serve.store.load/t1=1", 1).ok());
  Client client = ConnectOrDie(server);
  // One write -> one burst -> one micro-batch (max_batch default 8).
  std::string burst;
  for (uint64_t id = 1; id <= 3; ++id) {
    Frame frame;
    frame.type = FrameType::kForecastRequest;
    frame.request_id = id;
    frame.tenant_id = "t" + std::to_string(id - 1);  // t0, t1, t2
    frame.payload = EncodeTensorPayload(*window_);
    burst += EncodeFrame(frame);
  }
  ASSERT_TRUE(client.SendBytes(burst).ok());
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    Result<Frame> reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    const std::string tenant =
        "t" + std::to_string(reply.value().request_id - 1);
    if (tenant == "t1") {
      ASSERT_EQ(reply.value().type, FrameType::kError);
      Status carried = Status::Ok();
      ASSERT_TRUE(
          DecodeStatusPayload(reply.value().payload, &carried).ok());
      EXPECT_EQ(carried.code(), StatusCode::kUnavailable);
      EXPECT_NE(carried.message().find("serve.store.load/t1"),
                std::string::npos);
      ++failures;
    } else {
      ASSERT_EQ(reply.value().type, FrameType::kForecastResponse)
          << tenant << " should have been served";
      Result<Tensor> forecast = DecodeTensorPayload(reply.value().payload);
      ASSERT_TRUE(forecast.ok());
      EXPECT_EQ(forecast.value().ToVector(), expected_->at(tenant)) << tenant;
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_GE(server.scheduler_stats().failed, 1u);
  EXPECT_GE(server.stats().requests_failed, 1u);
  // Clearing the fault heals the tenant: the load is retried cold.
  ASSERT_TRUE(fault::Configure("", 0).ok());
  Result<Tensor> healed = client.Forecast("t1", *window_);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed.value().ToVector(), expected_->at("t1"));
}

TEST_F(ServerTest, AcceptFaultDropsTheConnectionButNotTheServer) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  Server server = StartServerOrDie();
  ASSERT_TRUE(fault::Configure("serve.server.accept=1", 1).ok());
  // TCP connect still succeeds (kernel accept queue); the server drops the
  // socket on accept, so the first read reports the closed connection.
  Result<Client> dropped = Client::Connect(server.port());
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.value().Ping().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(fault::Configure("", 0).ok());
  Client healthy = ConnectOrDie(server);
  EXPECT_TRUE(healthy.Ping().ok());
}

// Version negotiation: a frame carrying the old version 1 is answered
// with a kError naming both versions, then the connection closes (framing
// on a version we do not speak cannot be trusted).
TEST_F(ServerTest, WrongVersionIsNamedInTheErrorAndClosesTheConnection) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 9;
  std::string bytes = EncodeFrame(ping);
  bytes[4] = 1;  // version byte surgery; CRC is NOT restamped — the server
                 // must reject on version before it ever reaches the CRC
  ASSERT_TRUE(client.SendBytes(bytes).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, FrameType::kError);
  EXPECT_EQ(reply.value().request_id, 0u);  // stream-level, not per-request
  Status carried = Status::Ok();
  ASSERT_TRUE(DecodeStatusPayload(reply.value().payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(carried.message().find("unsupported protocol version 1"),
            std::string::npos);
  EXPECT_NE(carried.message().find("speaks version 2"), std::string::npos);
  EXPECT_EQ(client.ReadFrame().status().code(), StatusCode::kUnavailable);
}

TEST_F(ServerTest, GarbageStreamGetsAnErrorThenTheConnectionCloses) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  ASSERT_TRUE(client.SendBytes("GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, FrameType::kError);
  Status carried = Status::Ok();
  ASSERT_TRUE(DecodeStatusPayload(reply.value().payload, &carried).ok());
  EXPECT_NE(carried.message().find("bad magic"), std::string::npos);
  EXPECT_EQ(client.ReadFrame().status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(WaitFor([&] { return server.stats().protocol_errors >= 1; }));
}

// A malformed *payload* inside a well-framed request is a per-request
// error: framing is intact, so the connection survives it.
TEST_F(ServerTest, MalformedTensorPayloadFailsTheRequestNotTheConnection) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Frame frame;
  frame.type = FrameType::kForecastRequest;
  frame.request_id = 77;
  frame.tenant_id = "t0";
  frame.payload = "not a tensor";
  ASSERT_TRUE(client.SendFrame(frame).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, FrameType::kError);
  EXPECT_EQ(reply.value().request_id, 77u);
  Status carried = Status::Ok();
  ASSERT_TRUE(DecodeStatusPayload(reply.value().payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());  // same connection still works
}

TEST_F(ServerTest, UnknownTenantIsNotFound) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Result<Tensor> forecast = client.Forecast("stranger", *window_);
  EXPECT_EQ(forecast.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Ping().ok());  // per-request failure only
}

TEST_F(ServerTest, ClientSendingAServerFrameTypeIsDisconnected) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Frame bogus;
  bogus.type = FrameType::kForecastResponse;  // only servers send these
  bogus.request_id = 5;
  ASSERT_TRUE(client.SendFrame(bogus).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, FrameType::kError);
  Status carried = Status::Ok();
  ASSERT_TRUE(DecodeStatusPayload(reply.value().payload, &carried).ok());
  EXPECT_NE(carried.message().find("unexpected frame type FORECAST_RESPONSE"),
            std::string::npos);
  EXPECT_EQ(client.ReadFrame().status().code(), StatusCode::kUnavailable);
}

TEST_F(ServerTest, StatsCountTheTraffic) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Forecast("t0", *window_).ok());
  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.active_connections, 1);
  EXPECT_EQ(stats.frames_received, 2u);  // ping + forecast
  EXPECT_EQ(stats.frames_sent, 2u);      // pong + response
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.requests_ok, 1u);
  EXPECT_EQ(stats.requests_rejected, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  client.Close();
  EXPECT_TRUE(WaitFor([&] { return server.stats().active_connections == 0; }));
}

TEST_F(ServerTest, StopIsIdempotentAndDrainsInFlightWork) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  ASSERT_TRUE(client.SendForecastRequest("t0", *window_).ok());
  server.Stop();
  server.Stop();  // idempotent
  // The admitted request was flushed through the scheduler on shutdown.
  EXPECT_GE(server.scheduler_stats().executed, 0u);
}

// The per-connection write buffer is bounded: a client that pipelines
// pings but never reads would otherwise grow the server-side backlog
// without limit once the kernel buffers fill (pong and error replies
// bypass the scheduler's admission queue). Instead the slow reader is
// dropped — counted in slow_reader_drops — and the server stays healthy
// for everyone else. The failing sends on the dropped socket also pin the
// client half of the SIGPIPE fix: they surface kUnavailable as a Status
// instead of a signal killing this very process.
TEST_F(ServerTest, SlowReaderIsDroppedOnceItsWriteBacklogExceedsTheCeiling) {
  ServerOptions options;
  options.send_buffer_bytes = 4096;  // cap kernel-side absorption
  options.max_conn_buffered_bytes = 64 * 1024;
  Server server = StartServerOrDie(options);
  ClientOptions never_reads;
  never_reads.recv_buffer_bytes = 4096;
  Client client = ConnectOrDie(server, never_reads);
  std::string burst;
  Frame ping;
  ping.type = FrameType::kPing;
  for (uint64_t id = 1; id <= 4096; ++id) {
    ping.request_id = id;
    burst += EncodeFrame(ping);  // ~96 KiB of pings -> ~96 KiB of pongs
  }
  // Pour pings without ever reading a pong. Well before 64 rounds the
  // un-read pongs exceed kernel buffers plus the 64 KiB ceiling, the
  // server drops the connection, and further sends fail cleanly.
  for (int round = 0; round < 64; ++round) {
    Status sent = client.SendBytes(burst);
    if (!sent.ok()) {
      EXPECT_EQ(sent.code(), StatusCode::kUnavailable);
      break;
    }
    if (server.stats().slow_reader_drops >= 1) break;
  }
  EXPECT_TRUE(WaitFor([&] { return server.stats().slow_reader_drops >= 1; }));
  EXPECT_TRUE(WaitFor([&] { return server.stats().active_connections == 0; }));
  // The server is unharmed for well-behaved clients.
  Client healthy = ConnectOrDie(server);
  EXPECT_TRUE(healthy.Ping().ok());
  Result<Tensor> forecast = healthy.Forecast("t0", *window_);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().ToVector(), expected_->at("t0"));
}

TEST_F(ServerTest, HealthProbeReportsStateAndModelCounts) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Result<HealthInfo> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().state, ServeState::kServing);
  EXPECT_EQ(health.value().known_models, 9u);  // 5 families + t0..t3
  EXPECT_EQ(health.value().resident_models, 0u);  // nothing loaded yet

  ASSERT_TRUE(client.Forecast("t0", *window_).ok());
  Result<HealthInfo> after = client.Health();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(after.value().resident_models, 1u);
  EXPECT_EQ(after.value().state, ServeState::kServing);
}

// Streaming ingestion over the wire (kAppend): rows land in the server's
// observation log with the sequence numbers echoed back, the per-tenant
// journals are isolated, and malformed appends fail the request with a
// structured error, not the connection.
TEST_F(ServerTest, AppendOverTheWireLandsInTheObservationLog) {
  namespace fs = std::filesystem;
  const std::string log_dir = ::testing::TempDir() + "/server_append_log";
  fs::remove_all(log_dir);
  ServerOptions options;
  options.observation_log_dir = log_dir;
  Server server = StartServerOrDie(options);
  Client client = ConnectOrDie(server);

  for (uint64_t seq = 1; seq <= 3; ++seq) {
    Result<uint64_t> assigned = client.Append(
        "t0", {0.5 * static_cast<double>(seq), -1.0, 1.0 / 3.0});
    ASSERT_TRUE(assigned.ok()) << assigned.status().ToString();
    EXPECT_EQ(assigned.value(), seq);
  }
  Result<uint64_t> other = client.Append("t1", {9.0, 9.0, 9.0});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value(), 1u);  // per-tenant sequences are independent

  // A rank-2 payload is a per-request error; the connection survives.
  Frame bad;
  bad.type = FrameType::kAppend;
  bad.request_id = 777;
  bad.tenant_id = "t0";
  bad.payload = EncodeTensorPayload(
      Tensor::FromVector(Shape{2, 2}, {1.0, 2.0, 3.0, 4.0}));
  ASSERT_TRUE(client.SendFrame(bad).ok());
  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().request_id, 777u);
  EXPECT_EQ(reply.value().type, FrameType::kError);
  ASSERT_TRUE(client.Ping().ok());

  EXPECT_EQ(server.stats().appends_ok, 4u);
  EXPECT_EQ(server.stats().appends_failed, 1u);

  // The journal is durable: a fresh log on the same directory replays the
  // exact rows, in order.
  server.Stop();
  Result<online::ObservationLog> replayed =
      online::ObservationLog::Open(log_dir);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().rows("t0"), 3);
  EXPECT_EQ(replayed.value().rows("t1"), 1);
  Result<tensor::Tensor> rows = replayed.value().Replay("t0");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().data()[0], 0.5);
  EXPECT_EQ(rows.value().data()[2], 1.0 / 3.0);
  fs::remove_all(log_dir);
}

TEST_F(ServerTest, AppendWithoutAnObservationLogIsRefusedStructurally) {
  Server server = StartServerOrDie();  // no observation_log_dir
  Client client = ConnectOrDie(server);
  Result<uint64_t> refused = client.Append("t0", {1.0, 2.0, 3.0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(client.Ping().ok());  // the connection survives the refusal
}

// The health probe surfaces the store's published-version watermark, so a
// client can detect a completed hot swap end to end.
TEST_F(ServerTest, HealthProbeCarriesThePublishedVersionWatermark) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Result<HealthInfo> before = client.Health();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().max_published_version, 0u);
  ASSERT_TRUE(
      server.store().Publish("t0", *dir_ + "/t1.snapshot", /*version=*/5).ok());
  Result<HealthInfo> after = client.Health();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().max_published_version, 5u);
  // The swapped tenant serves the new file's exact bytes over the wire.
  Result<Tensor> forecast = client.Forecast("t0", *window_);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().ToVector(), expected_->at("t1"));
}

// Deadline propagation end to end: the deadline travels in the frame
// header, the scheduler sheds the expired request, and the client reads a
// structured kDeadlineExceeded reply — while a request with a generous
// deadline is served the exact engine bytes.
TEST_F(ServerTest, TinyDeadlineIsShedOverTheWireGenerousDeadlineIsServed) {
  // Age-close is pushed out of reach, so a single pending request can only
  // terminate by expiring: a 1-tick deadline against a clock that advances
  // every loop turn is deterministically dead before any batch closes.
  ServerOptions options;
  options.scheduler.max_delay_ticks = 1'000'000'000;
  Server server = StartServerOrDie(options);
  Client client = ConnectOrDie(server);
  Result<Tensor> shed = client.Forecast("t0", *window_, /*deadline_ticks=*/1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(shed.status().message().find("deadline"), std::string::npos)
      << shed.status().ToString();
  EXPECT_GE(server.scheduler_stats().expired, 1u);
  EXPECT_EQ(server.scheduler_stats().executed, 0u);

  // A normally-batching server and a deadline that cannot plausibly
  // expire: served, and bitwise what the in-process engine computes.
  Server normal = StartServerOrDie();
  Client normal_client = ConnectOrDie(normal);
  Result<Tensor> served = normal_client.Forecast(
      "t0", *window_, /*deadline_ticks=*/1'000'000'000);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served.value().ToVector(), expected_->at("t0"));
  EXPECT_GE(normal.scheduler_stats().executed, 1u);
  EXPECT_EQ(normal.scheduler_stats().expired, 0u);
}

// Satellite 2 + drain core: an admitted request's reply is still
// delivered after BeginDrain (finish in-flight, flush, then close).
TEST_F(ServerTest, ReplyAdmittedBeforeDrainIsStillDeliveredAndDrainCompletes) {
  Server server = StartServerOrDie();
  Client client = ConnectOrDie(server);
  Result<uint64_t> id = client.SendForecastRequest("t1", *window_);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Once the frame is received it is admitted within the same loop turn;
  // the drain flag is only honored at the top of the next turn.
  ASSERT_TRUE(WaitFor([&] { return server.stats().frames_received >= 1; }));
  server.BeginDrain();
  server.BeginDrain();  // idempotent

  Result<Frame> reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, FrameType::kForecastResponse);
  EXPECT_EQ(reply.value().request_id, id.value());
  Result<Tensor> forecast = DecodeTensorPayload(reply.value().payload);
  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  EXPECT_EQ(forecast.value().ToVector(), expected_->at("t1"));

  EXPECT_TRUE(server.WaitDrained(/*timeout_ms=*/10000));
  EXPECT_EQ(server.state(), ServeState::kDraining);
  // Zero leaked pins: everything the drained server loaded is evictable.
  EXPECT_GE(server.store().EvictIdle(-1), 1);
  EXPECT_EQ(server.store().stats().resident_models, 0);
  // The drained server's socket is gone for old and new clients alike.
  EXPECT_EQ(client.ReadFrame().status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(Client::Connect(server.port()).ok());
  server.Stop();
}

// The full drain choreography, held open deliberately: a slow reader's
// un-flushed pongs keep the drain lingering, during which a second
// (pre-drain) connection observes the "draining" rejection and the
// DRAINING health state; once the slow reader finally reads its backlog,
// the flush completes and the drain finishes.
TEST_F(ServerTest, DrainRefusesNewWorkAnswersHealthAndFlushesBacklog) {
  constexpr int kPings = 3000;  // ~100 KiB of pongs, far over 4 KiB buffers
  ServerOptions options;
  options.send_buffer_bytes = 4096;
  options.drain_linger_turns = 60000;  // the test ends the linger itself
  Server server = StartServerOrDie(options);

  ClientOptions slow;
  slow.recv_buffer_bytes = 4096;
  Client backlogged = ConnectOrDie(server, slow);
  Client observer = ConnectOrDie(server);  // connected before the drain
  ASSERT_TRUE(observer.Forecast("t2", *window_).ok());  // a model is resident

  std::string burst;
  Frame ping;
  ping.type = FrameType::kPing;
  for (uint64_t id = 1; id <= kPings; ++id) {
    ping.request_id = id;
    burst += EncodeFrame(ping);
  }
  ASSERT_TRUE(backlogged.SendBytes(burst).ok());
  // All pings are read (reads don't block on the stuck writes), so the
  // pong backlog now exceeds what the kernel buffers can absorb.
  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().frames_received >= kPings + 1; }));

  server.BeginDrain();
  ASSERT_TRUE(WaitFor([&] { return server.state() == ServeState::kDraining; }));
  EXPECT_FALSE(server.WaitDrained(/*timeout_ms=*/20));  // held by the backlog

  // A pre-drain connection: new forecasts are refused with a structured
  // "draining" kUnavailable, and health still answers — naming the state.
  Result<Tensor> refused = observer.Forecast("t3", *window_);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("draining"), std::string::npos)
      << refused.status().ToString();
  Result<HealthInfo> health = observer.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().state, ServeState::kDraining);
  EXPECT_GE(server.stats().requests_rejected, 1u);

  // The slow reader finally reads everything: the best-effort flush can
  // complete, and with it the drain.
  for (int i = 0; i < kPings; ++i) {
    Result<Frame> pong = backlogged.ReadFrame();
    ASSERT_TRUE(pong.ok()) << "pong " << i << ": "
                           << pong.status().ToString();
    ASSERT_EQ(pong.value().type, FrameType::kPong);
  }
  EXPECT_TRUE(server.WaitDrained(/*timeout_ms=*/10000));
  EXPECT_GE(server.store().EvictIdle(-1), 1);
  EXPECT_EQ(server.store().stats().resident_models, 0);
  server.Stop();
}

TEST_F(ServerTest, ConnectionsOverTheCapAreClosedImmediately) {
  ServerOptions options;
  options.max_connections = 1;
  Server server = StartServerOrDie(options);
  Client first = ConnectOrDie(server);
  ASSERT_TRUE(first.Ping().ok());
  Result<Client> second = Client::Connect(server.port());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().Ping().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(first.Ping().ok());  // the admitted connection is unharmed
}

}  // namespace
}  // namespace emaf::serve
