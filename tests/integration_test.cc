// End-to-end pipeline tests: synthetic cohort -> graphs -> personalized
// training -> evaluation, mirroring the paper's workflow (Fig. 1 / Fig. 2)
// at toy scale.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/report.h"
#include "data/csv.h"
#include "graph/metrics.h"
#include "nn/serialize.h"
#include "models/mtgnn.h"
#include "models/var_baseline.h"

namespace emaf {
namespace {

core::ExperimentConfig SmallConfig() {
  core::ExperimentConfig config;
  config.generator.num_individuals = 2;
  config.generator.num_variables = 8;
  config.generator.days = 14;
  config.generator.seed = 31;
  config.train.epochs = 25;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 1;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 8;
  config.mtgnn.embedding_dim = 4;
  config.seed = 7;
  return config;
}

TEST(IntegrationTest, MiniExperimentAProducesTable) {
  core::ExperimentConfig config = SmallConfig();
  core::ExperimentRunner runner(data::GenerateCohort(config.generator),
                                config);
  core::TablePrinter table({"Model", "Seq2"});
  for (core::ModelKind model :
       {core::ModelKind::kLstm, core::ModelKind::kMtgnn}) {
    core::CellSpec spec;
    spec.model = model;
    spec.metric = graph::GraphMetric::kCorrelation;
    spec.input_length = 2;
    core::CellResult result = runner.RunCellOrDie(spec);
    table.AddRow({spec.Label(), core::FormatMeanStd(result.stats)});
    EXPECT_TRUE(std::isfinite(result.stats.mean));
    EXPECT_GT(result.stats.mean, 0.0);
    EXPECT_LT(result.stats.mean, 10.0);  // sane scale on z-scored data
  }
  std::string text = table.ToString();
  EXPECT_NE(text.find("LSTM"), std::string::npos);
  EXPECT_NE(text.find("MTGNN_CORR"), std::string::npos);
}

TEST(IntegrationTest, LearnedGraphPipelineExperimentC) {
  core::ExperimentConfig config = SmallConfig();
  core::ExperimentRunner runner(data::GenerateCohort(config.generator),
                                config);
  // Static vs learned comparison, paired per individual.
  core::CellSpec static_spec;
  static_spec.model = core::ModelKind::kAstgcn;
  static_spec.metric = graph::GraphMetric::kCorrelation;
  static_spec.input_length = 2;
  core::CellResult static_result = runner.RunCellOrDie(static_spec);

  core::CellSpec learned_spec = static_spec;
  learned_spec.use_learned_graph = true;
  core::CellResult learned_result = runner.RunCellOrDie(learned_spec);

  double change = core::ExperimentRunner::MeanRelativeChangePercent(
      static_result, learned_result);
  EXPECT_TRUE(std::isfinite(change));
  // The learned and static graphs should be positively related (the paper
  // reports ~0.88 correlation at full scale).
  const core::LearnedGraphSet& learned =
      runner.LearnedGraphsOrDie(graph::GraphMetric::kCorrelation, 0.2, 2);
  EXPECT_GT(learned.mean_static_correlation, 0.0);
}

TEST(IntegrationTest, VarBaselineRunsOnCohortData) {
  core::ExperimentConfig config = SmallConfig();
  data::Cohort cohort = data::GenerateCohort(config.generator);
  const data::Individual& person = cohort.individuals[0];
  data::IndividualSplit split = data::MakeSplit(person, 2);
  models::VarBaseline var(5.0);
  var.Fit(split.train.inputs, split.train.targets);
  double mse =
      core::MseBetween(var.Predict(split.test.inputs), split.test.targets);
  EXPECT_TRUE(std::isfinite(mse));
  EXPECT_GT(mse, 0.0);
}

TEST(IntegrationTest, CohortCsvRoundTripFeedsPipeline) {
  // Export an individual to CSV, re-import, and verify the splits match.
  core::ExperimentConfig config = SmallConfig();
  data::Cohort cohort = data::GenerateCohort(config.generator);
  std::string path = std::string(::testing::TempDir()) + "/indiv.csv";
  ASSERT_TRUE(data::SaveIndividualCsv(cohort.individuals[0],
                                      cohort.variable_names, path)
                  .ok());
  Result<data::Individual> loaded = data::LoadIndividualCsv("reload", path);
  ASSERT_TRUE(loaded.ok());
  data::IndividualSplit original = data::MakeSplit(cohort.individuals[0], 2);
  data::IndividualSplit reloaded = data::MakeSplit(loaded.value(), 2);
  EXPECT_EQ(original.train.inputs.ToVector(),
            reloaded.train.inputs.ToVector());
  EXPECT_EQ(original.test.targets.ToVector(),
            reloaded.test.targets.ToVector());
}

TEST(IntegrationTest, MtgnnCheckpointRoundTrip) {
  // Train briefly, save, reload into a fresh model, verify identical
  // predictions and identical exported graphs.
  core::ExperimentConfig config = SmallConfig();
  data::Cohort cohort = data::GenerateCohort(config.generator);
  const data::Individual& person = cohort.individuals[0];
  data::IndividualSplit split = data::MakeSplit(person, 2);
  core::ExperimentRunner runner(cohort, config);
  graph::AdjacencyMatrix adj =
      runner.BuildStaticGraph(0, graph::GraphMetric::kCorrelation, 0.4);

  Rng rng_a(1);
  models::Mtgnn model(&adj, person.num_variables(), 2, config.mtgnn, &rng_a);
  core::TrainForecaster(&model, split.train, config.train);
  std::string path = std::string(::testing::TempDir()) + "/mtgnn.ckpt";
  ASSERT_TRUE(nn::SaveParameters(&model, path).ok());

  Rng rng_b(2);
  models::Mtgnn restored(&adj, person.num_variables(), 2, config.mtgnn,
                         &rng_b);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());
  model.SetTraining(false);
  restored.SetTraining(false);
  EXPECT_EQ(model.Forward(split.test.inputs).ToVector(),
            restored.Forward(split.test.inputs).ToVector());
  EXPECT_EQ(model.CurrentAdjacency(), restored.CurrentAdjacency());
}

TEST(IntegrationTest, GraphBuildersRecoverGroundTruthBetterThanRandom) {
  data::GeneratorConfig gen;
  gen.num_variables = 10;
  gen.days = 28;
  gen.seed = 5;
  gen.compliance_mean = 1.0;
  gen.compliance_spread = 0.0;
  double corr_f1 = 0.0;
  double rand_f1 = 0.0;
  Rng rng(77);
  for (int64_t i = 0; i < 4; ++i) {
    data::Individual person = data::GenerateIndividual(gen, i);
    graph::GraphBuildOptions options;
    options.metric = graph::GraphMetric::kCorrelation;
    graph::AdjacencyMatrix corr =
        graph::BuildSimilarityGraph(person.observations, options);
    corr_f1 += graph::ScoreEdgeRecovery(corr, *person.ground_truth_network).f1;
    graph::AdjacencyMatrix random = graph::RandomGraphWithEdgeCount(
        10, person.ground_truth_network->NumUndirectedEdges(), &rng);
    rand_f1 +=
        graph::ScoreEdgeRecovery(random, *person.ground_truth_network).f1;
  }
  EXPECT_GT(corr_f1, rand_f1);
}

}  // namespace
}  // namespace emaf
