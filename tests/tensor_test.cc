#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace emaf::tensor {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosInitializesToZero) {
  Tensor t = Tensor::Zeros(Shape{2, 3});
  for (double v : t.ToVector()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(t.NumElements(), 6);
}

TEST(TensorTest, OnesAndFull) {
  Tensor ones = Tensor::Ones(Shape{4});
  for (double v : ones.ToVector()) EXPECT_EQ(v, 1.0);
  Tensor full = Tensor::Full(Shape{2, 2}, -2.5);
  for (double v : full.ToVector()) EXPECT_EQ(v, -2.5);
}

TEST(TensorTest, FromVectorPreservesOrder) {
  Tensor t = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At({0, 0}), 1);
  EXPECT_EQ(t.At({0, 1}), 2);
  EXPECT_EQ(t.At({1, 0}), 3);
  EXPECT_EQ(t.At({1, 1}), 4);
}

TEST(TensorDeathTest, FromVectorSizeMismatch) {
  EXPECT_DEATH(Tensor::FromVector(Shape{2, 2}, {1, 2, 3}), "");
}

TEST(TensorTest, FromScalarIsRankZero) {
  Tensor t = Tensor::FromScalar(3.5);
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.item(), 3.5);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.At({i, j}), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(TensorTest, ArangeCountsUp) {
  Tensor t = Tensor::Arange(4);
  EXPECT_EQ(t.ToVector(), (std::vector<double>{0, 1, 2, 3}));
}

TEST(TensorTest, UniformRespectsRange) {
  Rng rng(3);
  Tensor t = Tensor::Uniform(Shape{100}, -1.0, 2.0, &rng);
  for (double v : t.ToVector()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(TensorTest, BernoulliIsZeroOne) {
  Rng rng(3);
  Tensor t = Tensor::Bernoulli(Shape{100}, 0.5, &rng);
  for (double v : t.ToVector()) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(TensorTest, SetAndAt) {
  Tensor t = Tensor::Zeros(Shape{2, 3});
  t.Set({1, 2}, 9.0);
  EXPECT_EQ(t.At({1, 2}), 9.0);
  EXPECT_EQ(t.At({0, 2}), 0.0);
}

TEST(TensorDeathTest, AtOutOfRange) {
  Tensor t = Tensor::Zeros(Shape{2, 2});
  EXPECT_DEATH(t.At({2, 0}), "");
  EXPECT_DEATH(t.At({0}), "");
}

TEST(TensorDeathTest, ItemRequiresSingleElement) {
  Tensor t = Tensor::Zeros(Shape{2});
  EXPECT_DEATH(t.item(), "");
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Full(Shape{2}, 1.0);
  Tensor b = a.Clone();
  b.data()[0] = 5.0;
  EXPECT_EQ(a.At({0}), 1.0);
  EXPECT_EQ(b.At({0}), 5.0);
}

TEST(TensorTest, DetachSharesStorage) {
  Tensor a = Tensor::Full(Shape{2}, 1.0);
  Tensor b = a.Detach();
  b.data()[0] = 5.0;
  EXPECT_EQ(a.At({0}), 5.0);
}

TEST(TensorTest, DetachDropsGradTracking) {
  Tensor a = Tensor::Ones(Shape{2}).SetRequiresGrad(true);
  Tensor b = Mul(a, a);
  EXPECT_TRUE(b.TracksGrad());
  EXPECT_FALSE(b.Detach().TracksGrad());
}

TEST(TensorTest, RequiresGradDefaultsOff) {
  Tensor t = Tensor::Zeros(Shape{2});
  EXPECT_FALSE(t.requires_grad());
  t.SetRequiresGrad(true);
  EXPECT_TRUE(t.requires_grad());
  EXPECT_TRUE(t.TracksGrad());
}

TEST(TensorDeathTest, SetRequiresGradOnNonLeafFails) {
  Tensor a = Tensor::Ones(Shape{2}).SetRequiresGrad(true);
  Tensor b = Mul(a, a);
  EXPECT_DEATH(b.SetRequiresGrad(true), "leaf");
}

TEST(TensorTest, GradUndefinedBeforeBackward) {
  Tensor t = Tensor::Zeros(Shape{2}).SetRequiresGrad(true);
  EXPECT_FALSE(t.grad().defined());
}

TEST(TensorTest, FillOverwritesAll) {
  Tensor t = Tensor::Zeros(Shape{3});
  t.Fill(2.0);
  for (double v : t.ToVector()) EXPECT_EQ(v, 2.0);
}

TEST(TensorTest, ToStringIncludesShapeAndValues) {
  Tensor t = Tensor::FromVector(Shape{2}, {1, 2});
  std::string s = t.ToString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_EQ(Tensor().ToString(), "Tensor(undefined)");
}

TEST(TensorTest, ToStringLargeTensorOmitsValues) {
  Tensor t = Tensor::Zeros(Shape{100});
  EXPECT_EQ(t.ToString().find("{"), std::string::npos);
}

}  // namespace
}  // namespace emaf::tensor
