#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Minimizes f(x) = sum((x - target)^2) and returns the final x.
template <typename MakeOptimizer>
Tensor Minimize(MakeOptimizer make, int steps) {
  Tensor x = Tensor::Full(Shape{3}, 5.0).SetRequiresGrad(true);
  Tensor target = Tensor::FromVector(Shape{3}, {1.0, -2.0, 0.5});
  auto optimizer = make(std::vector<Tensor*>{&x});
  for (int i = 0; i < steps; ++i) {
    optimizer->ZeroGrad();
    Tensor diff = tensor::Sub(x, target);
    tensor::Sum(tensor::Mul(diff, diff)).Backward();
    optimizer->Step();
  }
  return x.Clone();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Minimize(
      [](std::vector<Tensor*> p) {
        SgdOptions options;
        options.lr = 0.1;
        return std::make_unique<Sgd>(p, options);
      },
      200);
  EXPECT_NEAR(x.At({0}), 1.0, 1e-6);
  EXPECT_NEAR(x.At({1}), -2.0, 1e-6);
  EXPECT_NEAR(x.At({2}), 0.5, 1e-6);
}

TEST(SgdTest, MomentumAccelerates) {
  auto dist_after = [](double momentum) {
    Tensor x = Minimize(
        [momentum](std::vector<Tensor*> p) {
          SgdOptions options;
          options.lr = 0.01;
          options.momentum = momentum;
          return std::make_unique<Sgd>(p, options);
        },
        30);
    Tensor target = Tensor::FromVector(Shape{3}, {1.0, -2.0, 0.5});
    double total = 0.0;
    for (int64_t i = 0; i < 3; ++i) {
      double d = x.At({i}) - target.At({i});
      total += d * d;
    }
    return total;
  };
  EXPECT_LT(dist_after(0.9), dist_after(0.0));
}

TEST(SgdTest, SingleStepMatchesHandComputation) {
  Tensor x = Tensor::FromVector(Shape{1}, {2.0}).SetRequiresGrad(true);
  SgdOptions options;
  options.lr = 0.5;
  Sgd sgd({&x}, options);
  tensor::Sum(tensor::Mul(x, x)).Backward();  // grad = 2x = 4
  sgd.Step();
  EXPECT_DOUBLE_EQ(x.item(), 2.0 - 0.5 * 4.0);
}

TEST(SgdTest, WeightDecayShrinks) {
  Tensor x = Tensor::FromVector(Shape{1}, {1.0}).SetRequiresGrad(true);
  SgdOptions options;
  options.lr = 0.1;
  options.weight_decay = 1.0;
  Sgd sgd({&x}, options);
  // Loss contributing zero gradient: only decay acts.
  Tensor zero = tensor::Mul(x, Tensor::Zeros(Shape{1}));
  tensor::Sum(zero).Backward();
  sgd.Step();
  EXPECT_NEAR(x.item(), 0.9, 1e-12);
}

TEST(SgdTest, SkipsParametersWithoutGrad) {
  Tensor x = Tensor::FromVector(Shape{1}, {3.0}).SetRequiresGrad(true);
  SgdOptions options;
  Sgd sgd({&x}, options);
  sgd.Step();  // no backward happened
  EXPECT_DOUBLE_EQ(x.item(), 3.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Minimize(
      [](std::vector<Tensor*> p) {
        AdamOptions options;
        options.lr = 0.1;
        return std::make_unique<Adam>(p, options);
      },
      400);
  EXPECT_NEAR(x.At({0}), 1.0, 1e-3);
  EXPECT_NEAR(x.At({1}), -2.0, 1e-3);
  EXPECT_NEAR(x.At({2}), 0.5, 1e-3);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // Adam's bias correction makes the very first update ~ lr * sign(grad).
  Tensor x = Tensor::FromVector(Shape{1}, {10.0}).SetRequiresGrad(true);
  AdamOptions options;
  options.lr = 0.01;
  Adam adam({&x}, options);
  tensor::Sum(tensor::Mul(x, x)).Backward();
  adam.Step();
  EXPECT_NEAR(x.item(), 10.0 - 0.01, 1e-6);
}

TEST(AdamTest, ZeroGradClearsAccumulation) {
  Tensor x = Tensor::FromVector(Shape{1}, {1.0}).SetRequiresGrad(true);
  AdamOptions options;
  Adam adam({&x}, options);
  tensor::Sum(x.Detach().SetRequiresGrad(false).Clone()).Backward();
  adam.ZeroGrad();
  EXPECT_FALSE(x.grad().defined());
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Tensor x = Tensor::FromVector(Shape{2}, {0.0, 0.0}).SetRequiresGrad(true);
  Tensor w = Tensor::FromVector(Shape{2}, {3.0, 4.0});
  tensor::Sum(tensor::Mul(x, w)).Backward();  // grad = (3, 4), norm 5
  double norm = ClipGradNorm({&x}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-12);
  Tensor g = x.grad();
  EXPECT_NEAR(g.At({0}), 0.6, 1e-9);
  EXPECT_NEAR(g.At({1}), 0.8, 1e-9);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromVector(Shape{2}, {0.0, 0.0}).SetRequiresGrad(true);
  Tensor w = Tensor::FromVector(Shape{2}, {0.3, 0.4});
  tensor::Sum(tensor::Mul(x, w)).Backward();
  double norm = ClipGradNorm({&x}, 1.0);
  EXPECT_NEAR(norm, 0.5, 1e-12);
  EXPECT_NEAR(x.grad().At({0}), 0.3, 1e-12);
}

TEST(OptimizerDeathTest, RejectsNonGradParameters) {
  Tensor x = Tensor::Zeros(Shape{1});
  SgdOptions options;
  EXPECT_DEATH(Sgd({&x}, options), "grad");
}

}  // namespace
}  // namespace emaf::nn
