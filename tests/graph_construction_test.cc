#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/construction.h"
#include "graph/metrics.h"
#include "tensor/tensor.h"

namespace emaf::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

// [T, V] data with controlled structure: columns 0 and 1 are near-copies,
// column 2 is the negation of 0, column 3 is independent noise.
Tensor StructuredData(int64_t rows, Rng* rng) {
  Tensor data = Tensor::Zeros(Shape{rows, 4});
  double* d = data.data();
  for (int64_t t = 0; t < rows; ++t) {
    double base = std::sin(0.3 * static_cast<double>(t)) + 0.05 * rng->Normal();
    d[t * 4 + 0] = base;
    d[t * 4 + 1] = base + 0.05 * rng->Normal();
    d[t * 4 + 2] = -base + 0.05 * rng->Normal();
    d[t * 4 + 3] = rng->Normal();
  }
  return data;
}

class MetricPropertiesTest : public ::testing::TestWithParam<GraphMetric> {};

TEST_P(MetricPropertiesTest, ProducesValidSimilarityGraph) {
  Rng rng(7);
  Tensor data = StructuredData(60, &rng);
  GraphBuildOptions options;
  options.metric = GetParam();
  options.knn_k = 2;
  Rng graph_rng(8);
  AdjacencyMatrix adj = BuildSimilarityGraph(data, options, &graph_rng);
  EXPECT_EQ(adj.num_nodes(), 4);
  EXPECT_TRUE(adj.IsSymmetric(1e-9));
  EXPECT_TRUE(adj.IsNonNegative());
  EXPECT_TRUE(adj.HasZeroDiagonal());
  for (double v : adj.values()) EXPECT_LE(v, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricPropertiesTest,
    ::testing::Values(GraphMetric::kEuclidean, GraphMetric::kKnn,
                      GraphMetric::kDtw, GraphMetric::kCorrelation,
                      GraphMetric::kRandom),
    [](const ::testing::TestParamInfo<GraphMetric>& info) {
      return GraphMetricName(info.param);
    });

TEST(MetricNameTest, MatchesPaperLabels) {
  EXPECT_EQ(GraphMetricName(GraphMetric::kEuclidean), "EUC");
  EXPECT_EQ(GraphMetricName(GraphMetric::kKnn), "kNN");
  EXPECT_EQ(GraphMetricName(GraphMetric::kDtw), "DTW");
  EXPECT_EQ(GraphMetricName(GraphMetric::kCorrelation), "CORR");
  EXPECT_EQ(GraphMetricName(GraphMetric::kRandom), "RAND");
}

TEST(CorrelationGraphTest, DetectsLinearRelations) {
  Rng rng(9);
  Tensor data = StructuredData(120, &rng);
  GraphBuildOptions options;
  options.metric = GraphMetric::kCorrelation;
  AdjacencyMatrix adj = BuildSimilarityGraph(data, options);
  // Correlated pairs (0,1) and (0,2, via |r|) must beat the noise column.
  EXPECT_GT(adj.at(0, 1), 0.9);
  EXPECT_GT(adj.at(0, 2), 0.9);  // absolute correlation
  EXPECT_LT(adj.at(0, 3), 0.5);
  EXPECT_LT(adj.at(1, 3), 0.5);
}

TEST(EuclideanGraphTest, SimilarSeriesScoreHigher) {
  Rng rng(10);
  Tensor data = StructuredData(120, &rng);
  GraphBuildOptions options;
  options.metric = GraphMetric::kEuclidean;
  AdjacencyMatrix adj = BuildSimilarityGraph(data, options);
  // Column 1 is a near copy of column 0; column 2 is its negation, far in
  // L2 even though correlated.
  EXPECT_GT(adj.at(0, 1), adj.at(0, 2));
  EXPECT_GT(adj.at(0, 1), adj.at(0, 3));
}

TEST(EuclideanGraphTest, IdenticalColumnsGetFullWeight) {
  Tensor data = Tensor::Zeros(Shape{10, 3});
  double* d = data.data();
  for (int64_t t = 0; t < 10; ++t) {
    d[t * 3 + 0] = static_cast<double>(t);
    d[t * 3 + 1] = static_cast<double>(t);  // identical to col 0
    d[t * 3 + 2] = 10.0 - static_cast<double>(t);
  }
  GraphBuildOptions options;
  options.metric = GraphMetric::kEuclidean;
  AdjacencyMatrix adj = BuildSimilarityGraph(data, options);
  EXPECT_NEAR(adj.at(0, 1), 1.0, 1e-12);
  EXPECT_LT(adj.at(0, 2), 1.0);
}

TEST(KnnGraphTest, LimitsNeighbourCount) {
  Rng rng(11);
  Tensor data = Tensor::Zeros(Shape{50, 8});
  double* d = data.data();
  for (int64_t i = 0; i < data.NumElements(); ++i) d[i] = rng.Normal();
  GraphBuildOptions options;
  options.metric = GraphMetric::kKnn;
  options.knn_k = 2;
  AdjacencyMatrix adj = BuildSimilarityGraph(data, options);
  // Each node selected 2 neighbours; after symmetrization a node may gain
  // extra incoming edges but the total undirected edges stay <= V * k.
  EXPECT_LE(adj.NumUndirectedEdges(), 8 * 2);
  EXPECT_GE(adj.NumUndirectedEdges(), 8);  // at least k per node selected
  EXPECT_TRUE(adj.IsSymmetric(1e-12));
}

TEST(DtwGraphTest, TimeShiftedSeriesStaySimilar) {
  // Column 1 is column 0 delayed by 2 steps: DTW forgives the lag,
  // Euclidean does not.
  int64_t rows = 80;
  Tensor data = Tensor::Zeros(Shape{rows, 3});
  Rng rng(12);
  double* d = data.data();
  for (int64_t t = 0; t < rows; ++t) {
    double phase = 0.4 * static_cast<double>(t);
    d[t * 3 + 0] = std::sin(phase);
    d[t * 3 + 1] = std::sin(phase - 0.8);  // shifted copy
    d[t * 3 + 2] = rng.Normal();
  }
  GraphBuildOptions dtw_options;
  dtw_options.metric = GraphMetric::kDtw;
  AdjacencyMatrix dtw = BuildSimilarityGraph(data, dtw_options);
  GraphBuildOptions euc_options;
  euc_options.metric = GraphMetric::kEuclidean;
  AdjacencyMatrix euc = BuildSimilarityGraph(data, euc_options);
  // DTW similarity of the shifted pair relative to the noise pair should
  // be larger than under Euclidean.
  EXPECT_GT(dtw.at(0, 1), euc.at(0, 1));
  EXPECT_GT(dtw.at(0, 1), dtw.at(0, 2));
}

TEST(RandomGraphTest, DeterministicGivenRng) {
  Rng rng_a(13);
  Rng rng_b(13);
  Tensor data = Tensor::Zeros(Shape{10, 5});
  GraphBuildOptions options;
  options.metric = GraphMetric::kRandom;
  AdjacencyMatrix a = BuildSimilarityGraph(data, options, &rng_a);
  AdjacencyMatrix b = BuildSimilarityGraph(data, options, &rng_b);
  EXPECT_EQ(a, b);
}

TEST(RandomGraphDeathTest, RequiresRng) {
  Tensor data = Tensor::Zeros(Shape{10, 5});
  GraphBuildOptions options;
  options.metric = GraphMetric::kRandom;
  EXPECT_DEATH(BuildSimilarityGraph(data, options, nullptr), "Rng");
}

TEST(KeepTopFractionTest, KeepsRequestedEdgeCount) {
  Rng rng(14);
  Tensor data = StructuredData(50, &rng);
  GraphBuildOptions options;
  options.metric = GraphMetric::kCorrelation;
  AdjacencyMatrix full = BuildSimilarityGraph(data, options);
  // 4 nodes -> 6 undirected pairs. GDT 0.5 keeps 3.
  AdjacencyMatrix sparse = KeepTopFraction(full, 0.5);
  EXPECT_EQ(sparse.NumUndirectedEdges(), 3);
  EXPECT_TRUE(sparse.IsSymmetric(1e-12));
}

TEST(KeepTopFractionTest, FullFractionIsIdentity) {
  Rng rng(15);
  Tensor data = StructuredData(50, &rng);
  GraphBuildOptions options;
  options.metric = GraphMetric::kEuclidean;
  AdjacencyMatrix full = BuildSimilarityGraph(data, options);
  EXPECT_EQ(KeepTopFraction(full, 1.0), full);
}

TEST(KeepTopFractionTest, KeepsTheStrongestEdges) {
  AdjacencyMatrix adj(3);
  adj.set(0, 1, 0.9);
  adj.set(1, 0, 0.9);
  adj.set(0, 2, 0.2);
  adj.set(2, 0, 0.2);
  adj.set(1, 2, 0.5);
  adj.set(2, 1, 0.5);
  AdjacencyMatrix kept = KeepTopFraction(adj, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(kept.at(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(kept.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(kept.at(1, 2), 0.0);
}

TEST(KeepTopFractionTest, AtLeastOneEdgeSurvives) {
  AdjacencyMatrix adj(3);
  adj.set(0, 1, 0.9);
  adj.set(1, 0, 0.9);
  AdjacencyMatrix kept = KeepTopFraction(adj, 0.01);
  EXPECT_EQ(kept.NumUndirectedEdges(), 1);
}

TEST(KeepTopFractionDeathTest, RejectsAsymmetric) {
  AdjacencyMatrix adj(2);
  adj.set(0, 1, 1.0);
  EXPECT_DEATH(KeepTopFraction(adj, 0.5), "symmetric");
}

TEST(RandomGraphWithEdgeCountTest, ExactEdgeCount) {
  Rng rng(16);
  for (int64_t edges : {0, 1, 5, 10}) {
    AdjacencyMatrix adj = RandomGraphWithEdgeCount(5, edges, &rng);
    EXPECT_EQ(adj.NumUndirectedEdges(), edges);
    EXPECT_TRUE(adj.IsSymmetric(1e-12));
    EXPECT_TRUE(adj.HasZeroDiagonal());
  }
}

TEST(RandomGraphWithEdgeCountTest, FullGraph) {
  Rng rng(17);
  AdjacencyMatrix adj = RandomGraphWithEdgeCount(4, 6, &rng);
  EXPECT_EQ(adj.NumUndirectedEdges(), 6);
}

TEST(GraphRecoveryTest, CorrelationBeatsRandomOnCoupledData) {
  // Ground truth: 0-1 and 0-2 coupled. The correlation graph thresholded
  // to the true edge count should recover them better than a random graph.
  Rng rng(18);
  Tensor data = StructuredData(200, &rng);
  AdjacencyMatrix truth(4);
  truth.set(0, 1, 1.0);
  truth.set(1, 0, 1.0);
  truth.set(0, 2, 1.0);
  truth.set(2, 0, 1.0);

  GraphBuildOptions corr_options;
  corr_options.metric = GraphMetric::kCorrelation;
  AdjacencyMatrix corr = BuildSimilarityGraph(data, corr_options);
  RecoveryScore corr_score = ScoreEdgeRecovery(corr, truth);
  EXPECT_GT(corr_score.f1, 0.66);

  Rng random_rng(19);
  double random_f1_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    AdjacencyMatrix random = RandomGraphWithEdgeCount(4, 2, &random_rng);
    random_f1_total += ScoreEdgeRecovery(random, truth).f1;
  }
  EXPECT_GT(corr_score.f1, random_f1_total / 20.0);
}

TEST(BuildSimilarityGraphDeathTest, RejectsTinyInput) {
  GraphBuildOptions options;
  EXPECT_DEATH(BuildSimilarityGraph(Tensor::Zeros(Shape{1, 4}), options), "");
  EXPECT_DEATH(BuildSimilarityGraph(Tensor::Zeros(Shape{10, 1}), options), "");
  EXPECT_DEATH(BuildSimilarityGraph(Tensor::Zeros(Shape{4}), options), "");
}

}  // namespace
}  // namespace emaf::graph
