// Personalized cohort forecasting: the paper's core workflow (Fig. 1) at
// demo scale. For each participant in a small cohort, train one LSTM and
// one MTGNN (correlation-graph prior) and compare per-individual and
// aggregate 1-lag test MSE — the clinician's question "does the graph
// model forecast my patient better?".
//
//   ./build/examples/personalized_forecasting [num_individuals] [epochs]

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "core/experiment.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace emaf;  // NOLINT: example brevity
  int64_t individuals = argc > 1 ? std::atoll(argv[1]) : 3;
  int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 40;

  core::ExperimentConfig config;
  config.generator.num_individuals = individuals;
  config.generator.days = 14;
  config.generator.seed = 2024;
  config.train.epochs = epochs;
  config.seed = 7;

  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  core::CellSpec lstm;
  lstm.model = core::ModelKind::kLstm;
  lstm.input_length = 5;
  core::CellSpec mtgnn;
  mtgnn.model = core::ModelKind::kMtgnn;
  mtgnn.metric = graph::GraphMetric::kCorrelation;
  mtgnn.gdt = 0.2;
  mtgnn.input_length = 5;

  std::cout << "training LSTM and MTGNN_CORR for " << individuals
            << " participants (" << epochs << " epochs each)...\n\n";
  core::CellResult lstm_result = runner.RunCellOrDie(lstm);
  core::CellResult mtgnn_result = runner.RunCellOrDie(mtgnn);

  core::TablePrinter table({"Participant", "LSTM", "MTGNN_CORR", "winner"});
  for (int64_t i = 0; i < cohort.size(); ++i) {
    double l = lstm_result.per_individual_mse[static_cast<size_t>(i)];
    double m = mtgnn_result.per_individual_mse[static_cast<size_t>(i)];
    table.AddRow({cohort.individuals[static_cast<size_t>(i)].id,
                  FormatFixed(l, 3), FormatFixed(m, 3),
                  m < l ? "MTGNN" : "LSTM"});
  }
  table.AddRow({"cohort mean(std)", core::FormatMeanStd(lstm_result.stats),
                core::FormatMeanStd(mtgnn_result.stats),
                mtgnn_result.stats.mean < lstm_result.stats.mean ? "MTGNN"
                                                                 : "LSTM"});
  table.Print(std::cout);

  double change = core::ExperimentRunner::MeanRelativeChangePercent(
      lstm_result, mtgnn_result);
  std::cout << "\nmean per-participant MSE change vs LSTM: "
            << FormatFixed(change, 1) << "%\n";
  return 0;
}
