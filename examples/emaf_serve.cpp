// Network-serving quickstart: build a tiny snapshot directory (three
// untrained LSTM tenants), start the epoll serving front-end on an
// ephemeral loopback port, and talk to it with the in-repo client — ping,
// then one forecast per tenant, printing the served bytes.
//
//   ./build/examples/emaf_serve                 # demo, exits when done
//   ./build/examples/emaf_serve --serve-forever # leave the server up for
//                                               # external clients
//
// The wire protocol and overload contract are documented in DESIGN.md
// ("Network serving"); the same Client class drives the loopback tests
// and the bench_serving load generator.

#include <csignal>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "models/registry.h"
#include "serve/client.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace {
// SIGTERM/SIGINT request a *graceful* drain, not an abrupt exit: finish
// in-flight forecasts, flush their replies, refuse new work with a
// structured "draining" error — the lifecycle a process manager expects.
volatile std::sig_atomic_t g_shutdown_requested = 0;
void HandleShutdownSignal(int) { g_shutdown_requested = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace emaf;  // NOLINT: example brevity

  bool serve_forever = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--serve-forever") serve_forever = true;
  }

  // 1. Snapshots: three tenants, deterministic tiny LSTMs. A real
  //    deployment points the server at its training-run snapshot
  //    directory (or a MANIFEST — see ModelStore::Open).
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/emaf_serve_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const int64_t vars = 3, steps = 2;
  for (const std::string& tenant : {"i01", "i02", "i03"}) {
    models::ModelConfig config;
    config.family = "LSTM";
    config.num_variables = vars;
    config.input_length = steps;
    config.lstm.hidden_units = 4;
    Rng rng(std::hash<std::string>{}(tenant));
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    Status saved = models::SaveForecasterSnapshot(
        model.get(), config, dir + "/" + tenant + ".snapshot");
    if (!saved.ok()) {
      std::cerr << "snapshot failed: " << saved.ToString() << "\n";
      return 1;
    }
  }

  // 2. Server: ephemeral port on 127.0.0.1; the event loop owns the
  //    sockets, the global thread pool executes the micro-batches.
  Result<serve::Server> started = serve::Server::Start(dir);
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.status().ToString()
              << "\n";
    return 1;
  }
  serve::Server server = std::move(started).value();
  std::cout << "serving " << server.store().num_known_models()
            << " tenants on 127.0.0.1:" << server.port() << "\n";

  // 3. Client: ping, then one forecast per tenant.
  Result<serve::Client> connected = serve::Client::Connect(server.port());
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 1;
  }
  serve::Client client = std::move(connected).value();
  Status ping = client.Ping();
  std::cout << "ping: " << (ping.ok() ? "pong" : ping.ToString()) << "\n";

  Rng window_rng(7);
  tensor::Tensor window =
      tensor::Tensor::Uniform(tensor::Shape{1, steps, vars}, -1, 1,
                              &window_rng);
  for (const std::string& tenant : {"i01", "i02", "i03"}) {
    Result<tensor::Tensor> forecast = client.Forecast(tenant, window);
    if (!forecast.ok()) {
      std::cerr << tenant << ": " << forecast.status().ToString() << "\n";
      return 1;
    }
    std::cout << tenant << " forecast:";
    for (double v : forecast.value().ToVector()) std::cout << " " << v;
    std::cout << "\n";
  }

  // An unknown tenant comes back as a structured error, not a hang.
  Result<tensor::Tensor> missing = client.Forecast("stranger", window);
  std::cout << "stranger: " << missing.status().ToString() << "\n";

  serve::Server::Stats stats = server.stats();
  std::cout << "server stats: " << stats.frames_received << " frames in, "
            << stats.frames_sent << " out, " << stats.requests_ok
            << " ok, " << stats.requests_failed << " failed\n";

  if (serve_forever) {
    std::signal(SIGTERM, HandleShutdownSignal);
    std::signal(SIGINT, HandleShutdownSignal);
    std::cout << "serving forever on 127.0.0.1:" << server.port()
              << " (SIGTERM/ctrl-c drains gracefully)\n";
    while (g_shutdown_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::cout << "shutdown signal received; draining...\n";
    server.BeginDrain();
    const bool clean = server.WaitDrained(/*timeout_ms=*/10000);
    std::cout << (clean ? "drained: all in-flight work finished and flushed"
                        : "drain timed out; stopping anyway")
              << "\n";
    server.Stop();
  }
  std::filesystem::remove_all(dir);
  return 0;
}
