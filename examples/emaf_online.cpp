// Streaming-ingestion quickstart: the closed loop from a live EMA
// observation to a hot-swapped served forecast (DESIGN.md, "Online
// ingestion & hot-swap").
//
//   ./build/examples/emaf_online
//
// One tenant, one process, four acts:
//   1. a serving front-end with ingestion enabled (observation_log_dir),
//   2. a client streaming observation rows over the wire (kAppend),
//   3. an in-process OnlinePipeline sharing the server's journal: window
//      the log, warm-start fine-tune from the serving snapshot, publish
//      `<id>.v<N>.snapshot`, hot-swap it into the live ModelStore,
//   4. the same forecast request before and after — the served bytes
//      change under the client's feet without a dropped request, and the
//      health probe's version watermark ticks up.

#include <cmath>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/registry.h"
#include "online/observation_log.h"
#include "online/pipeline.h"
#include "online/publisher.h"
#include "serve/client.h"
#include "serve/server.h"
#include "tensor/tensor.h"

int main() {
  using namespace emaf;  // NOLINT: example brevity

  const std::string root =
      std::filesystem::temp_directory_path().string() + "/emaf_online_demo";
  std::filesystem::remove_all(root);
  const std::string snapshots = root + "/snapshots";
  std::filesystem::create_directories(snapshots);
  const int64_t vars = 3, steps = 2;
  const std::string tenant = "p01";

  // 1. The initial snapshot: an untrained tiny LSTM, as a cold-start
  //    deployment would have before any data arrived.
  models::ModelConfig config;
  config.family = "LSTM";
  config.num_variables = vars;
  config.input_length = steps;
  config.lstm.hidden_units = 4;
  Rng init_rng(7);
  std::unique_ptr<models::Forecaster> initial =
      models::CreateForecasterOrDie(config, &init_rng);
  Status saved = models::SaveForecasterSnapshot(
      initial.get(), config, snapshots + "/" + tenant + ".snapshot");
  if (!saved.ok()) {
    std::cerr << "snapshot failed: " << saved.ToString() << "\n";
    return 1;
  }

  // 2. Server with ingestion enabled; the journal lives next to the
  //    snapshots but in its own directory.
  serve::ServerOptions server_options;
  server_options.observation_log_dir = root + "/obslog";
  Result<serve::Server> started =
      serve::Server::Start(snapshots, server_options);
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.status().ToString()
              << "\n";
    return 1;
  }
  serve::Server server = std::move(started).value();
  std::cout << "serving on 127.0.0.1:" << server.port()
            << " with streaming ingestion\n";

  Result<serve::Client> connected = serve::Client::Connect(server.port());
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 1;
  }
  serve::Client client = std::move(connected).value();

  // 3. Stream observations over the wire. Each kAppend lands in the
  //    tenant's CRC-checked journal and is acknowledged with the sequence
  //    number the log assigned.
  const int64_t rows = 24;
  for (int64_t t = 0; t < rows; ++t) {
    std::vector<double> row(vars);
    for (int64_t v = 0; v < vars; ++v) {
      row[static_cast<size_t>(v)] =
          std::sin(0.3 * static_cast<double>(t) + static_cast<double>(v));
    }
    Result<uint64_t> seq = client.Append(tenant, row);
    if (!seq.ok()) {
      std::cerr << "append failed: " << seq.status().ToString() << "\n";
      return 1;
    }
    if (t == 0 || t == rows - 1) {
      std::cout << "appended row " << t << " -> sequence " << seq.value()
                << "\n";
    }
  }

  // The forecast the cold-start snapshot serves for a fixed window.
  Rng window_rng(11);
  tensor::Tensor window = tensor::Tensor::Uniform(
      tensor::Shape{1, steps, vars}, -1, 1, &window_rng);
  Result<tensor::Tensor> before = client.Forecast(tenant, window);
  if (!before.ok()) {
    std::cerr << "forecast failed: " << before.status().ToString() << "\n";
    return 1;
  }
  Result<serve::HealthInfo> health_before = client.Health();
  std::cout << "before update: version watermark "
            << (health_before.ok()
                    ? health_before.value().max_published_version
                    : 0)
            << ", forecast:";
  for (double v : before.value().ToVector()) std::cout << " " << v;
  std::cout << "\n";

  // 4. One online update: window the journal, fine-tune from the serving
  //    snapshot, publish v1, hot-swap it into the live store. The pipeline
  //    shares the *server's* log instance, so the rows it windows are the
  //    ones just acknowledged over the wire.
  Result<online::SnapshotPublisher> publisher =
      online::SnapshotPublisher::Open(snapshots);
  if (!publisher.ok()) {
    std::cerr << "publisher failed: " << publisher.status().ToString()
              << "\n";
    return 1;
  }
  online::OnlinePipelineOptions pipeline_options;
  pipeline_options.graph.window_rows = 16;
  pipeline_options.train.epochs = 5;
  online::OnlinePipeline pipeline(server.observation_log(),
                                  &publisher.value(), &server.store(),
                                  pipeline_options);
  Result<online::UpdateOutcome> outcome = pipeline.UpdateIndividual(tenant);
  if (!outcome.ok()) {
    std::cerr << "update refused: " << outcome.status().ToString() << "\n";
    return 1;
  }
  std::cout << "published version " << outcome.value().version << " ("
            << outcome.value().rows_used << " rows, final loss "
            << outcome.value().final_loss << ", "
            << outcome.value().attempts << " attempt(s)) -> "
            << outcome.value().path << "\n";

  // 5. The same request now serves the fine-tuned bytes; the connection
  //    never dropped and the watermark ticked.
  Result<tensor::Tensor> after = client.Forecast(tenant, window);
  if (!after.ok()) {
    std::cerr << "forecast failed: " << after.status().ToString() << "\n";
    return 1;
  }
  Result<serve::HealthInfo> health_after = client.Health();
  std::cout << "after hot-swap: version watermark "
            << (health_after.ok()
                    ? health_after.value().max_published_version
                    : 0)
            << ", forecast:";
  for (double v : after.value().ToVector()) std::cout << " " << v;
  std::cout << "\n";
  std::cout << (before.value().ToVector() == after.value().ToVector()
                    ? "served bytes did NOT change (unexpected)\n"
                    : "served bytes changed without a dropped request\n");

  server.Stop();
  std::filesystem::remove_all(root);
  return 0;
}
