// Graph analysis: build every similarity graph the paper evaluates (EUC,
// kNN, DTW, CORR, RAND) for one synthetic participant, compare their
// structure, score them against the generator's ground-truth interaction
// network, and export the correlation graph as CSV.
//
//   ./build/examples/graph_analysis [output_dir]

#include <iostream>
#include <vector>

#include "common/string_util.h"
#include "core/report.h"
#include "data/csv.h"
#include "data/ema_items.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace emaf;  // NOLINT: example brevity
  std::string output_dir = argc > 1 ? argv[1] : "/tmp";

  data::GeneratorConfig gen;
  gen.seed = 21;
  data::Individual person = data::GenerateIndividual(gen, 0);
  std::cout << "participant " << person.id << ": "
            << person.num_time_points() << " time points, "
            << person.num_variables() << " EMA items\n\n";

  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kKnn,
      graph::GraphMetric::kDtw, graph::GraphMetric::kCorrelation,
      graph::GraphMetric::kRandom};

  Rng rng(33);
  std::vector<graph::AdjacencyMatrix> graphs;
  core::TablePrinter table(
      {"Graph", "density(GDT=20%)", "mean_degree", "truth_precision",
       "truth_recall", "truth_F1"});
  for (graph::GraphMetric metric : metrics) {
    graph::GraphBuildOptions options;
    options.metric = metric;
    graph::AdjacencyMatrix full =
        graph::BuildSimilarityGraph(person.observations, options, &rng);
    graph::AdjacencyMatrix sparse = graph::KeepTopFraction(full, 0.2);
    graph::DegreeStats degrees = graph::ComputeDegreeStats(sparse);
    graph::RecoveryScore recovery =
        graph::ScoreEdgeRecovery(full, *person.ground_truth_network);
    table.AddRow({graph::GraphMetricName(metric),
                  FormatFixed(sparse.Density(), 3),
                  FormatFixed(degrees.mean_degree, 1),
                  FormatFixed(recovery.precision, 3),
                  FormatFixed(recovery.recall, 3),
                  FormatFixed(recovery.f1, 3)});
    graphs.push_back(std::move(full));
  }
  table.Print(std::cout);

  // Pairwise similarity between the construction methods.
  std::cout << "\npairwise graph correlation (off-diagonal weights):\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    for (size_t j = i + 1; j < metrics.size(); ++j) {
      std::cout << "  " << graph::GraphMetricName(metrics[i]) << " vs "
                << graph::GraphMetricName(metrics[j]) << ": "
                << FormatFixed(graph::GraphCorrelation(graphs[i], graphs[j]),
                               3)
                << "\n";
    }
  }

  // Strongest correlation edges, by item name.
  const graph::AdjacencyMatrix& corr = graphs[3];
  std::vector<std::string> names = data::EmaItemNames();
  std::cout << "\nstrongest CORR edges:\n";
  graph::AdjacencyMatrix top = graph::KeepTopFraction(corr, 0.02);
  for (int64_t i = 0; i < top.num_nodes(); ++i) {
    for (int64_t j = i + 1; j < top.num_nodes(); ++j) {
      if (top.at(i, j) != 0.0) {
        std::cout << "  " << names[static_cast<size_t>(i)] << " -- "
                  << names[static_cast<size_t>(j)] << "  (|r| = "
                  << FormatFixed(top.at(i, j), 3) << ")\n";
      }
    }
  }

  std::string csv_path = output_dir + "/correlation_graph.csv";
  Status status = data::SaveAdjacencyCsv(corr, csv_path);
  if (status.ok()) {
    std::cout << "\nexported correlation graph to " << csv_path << "\n";
  } else {
    std::cout << "\nexport failed: " << status.ToString() << "\n";
  }
  return 0;
}
