// Quickstart: generate one synthetic EMA individual, build a correlation
// graph over the 26 items, train the MTGNN forecaster and the LSTM
// baseline, and compare their 1-lag test MSE.
//
//   ./build/examples/quickstart

#include <iostream>

#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"
#include "ts/window.h"

int main() {
  using namespace emaf;  // NOLINT: example brevity

  // 1. Data: one synthetic participant (28 days x 8 beeps, 26 EMA items,
  //    Likert-quantized, compliance-thinned, z-scored).
  data::GeneratorConfig gen;
  gen.num_individuals = 1;
  gen.days = 14;  // demo scale; the study protocol is 28 days
  gen.seed = 7;
  data::Individual person = data::GenerateIndividual(gen, /*index=*/0);
  std::cout << "individual " << person.id << ": "
            << person.num_time_points() << " time points x "
            << person.num_variables() << " variables\n";

  // 2. Split: sequential 70/30, windows of the last 5 steps (Seq5).
  const int64_t input_length = 5;
  data::IndividualSplit split = data::MakeSplit(person, input_length);
  std::cout << "train windows: " << split.train.num_windows()
            << ", test windows: " << split.test.num_windows() << "\n";

  // 3. Graph: absolute Pearson correlation between items, built on the
  //    training region, sparsified to the strongest 20% of edges.
  graph::GraphBuildOptions graph_options;
  graph_options.metric = graph::GraphMetric::kCorrelation;
  tensor::Tensor train_region =
      tensor::Slice(person.observations, 0, 0, split.split_row);
  graph::AdjacencyMatrix corr =
      graph::BuildSimilarityGraph(train_region, graph_options);
  graph::AdjacencyMatrix sparse = graph::KeepTopFraction(corr, 0.2);
  std::cout << "graph density after GDT=20%: " << sparse.Density() << "\n";

  // 4. Train MTGNN (graph learning on, correlation prior) and LSTM.
  core::TrainConfig train;
  train.epochs = 40;  // demo scale; the paper trains 300

  Rng rng(123);
  models::MtgnnConfig mtgnn_config;
  models::Mtgnn mtgnn(&sparse, person.num_variables(), input_length,
                      mtgnn_config, &rng);
  core::TrainForecaster(&mtgnn, split.train, train);
  double mtgnn_mse = core::EvaluateMse(&mtgnn, split.test);

  models::LstmConfig lstm_config;
  models::LstmForecaster lstm(person.num_variables(), input_length,
                              lstm_config, &rng);
  core::TrainForecaster(&lstm, split.train, train);
  double lstm_mse = core::EvaluateMse(&lstm, split.test);

  std::cout << "test MSE  MTGNN_CORR: " << mtgnn_mse << "\n";
  std::cout << "test MSE  LSTM:       " << lstm_mse << "\n";
  return 0;
}
