// Quickstart: generate one synthetic EMA individual, build a correlation
// graph over the 26 items, train the MTGNN forecaster and the LSTM
// baseline through the model registry, compare their 1-lag test MSE, then
// snapshot the winner and answer a forecast request through the serving
// engine.
//
//   ./build/examples/quickstart

#include <filesystem>
#include <iostream>
#include <memory>

#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "models/registry.h"
#include "serve/inference_engine.h"
#include "ts/window.h"

int main() {
  using namespace emaf;  // NOLINT: example brevity

  // 1. Data: one synthetic participant (28 days x 8 beeps, 26 EMA items,
  //    Likert-quantized, compliance-thinned, z-scored).
  data::GeneratorConfig gen;
  gen.num_individuals = 1;
  gen.days = 14;  // demo scale; the study protocol is 28 days
  gen.seed = 7;
  data::Individual person = data::GenerateIndividual(gen, /*index=*/0);
  std::cout << "individual " << person.id << ": "
            << person.num_time_points() << " time points x "
            << person.num_variables() << " variables\n";

  // 2. Split: sequential 70/30, windows of the last 5 steps (Seq5).
  const int64_t input_length = 5;
  data::IndividualSplit split = data::MakeSplit(person, input_length);
  std::cout << "train windows: " << split.train.num_windows()
            << ", test windows: " << split.test.num_windows() << "\n";

  // 3. Graph: absolute Pearson correlation between items, built on the
  //    training region, sparsified to the strongest 20% of edges.
  graph::GraphBuildOptions graph_options;
  graph_options.metric = graph::GraphMetric::kCorrelation;
  tensor::Tensor train_region =
      tensor::Slice(person.observations, 0, 0, split.split_row);
  graph::AdjacencyMatrix corr =
      graph::BuildSimilarityGraph(train_region, graph_options);
  graph::AdjacencyMatrix sparse = graph::KeepTopFraction(corr, 0.2);
  std::cout << "graph density after GDT=20%: " << sparse.Density() << "\n";

  // 4. Train MTGNN (graph learning on, correlation prior) and LSTM, both
  //    built through the model registry — the same construction path the
  //    experiment grid and the serving engine use.
  core::TrainConfig train;
  train.epochs = 40;  // demo scale; the paper trains 300

  Rng rng(123);
  models::ModelConfig mtgnn_config;
  mtgnn_config.family = "MTGNN";
  mtgnn_config.num_variables = person.num_variables();
  mtgnn_config.input_length = input_length;
  mtgnn_config.adjacency = sparse;
  std::unique_ptr<models::Forecaster> mtgnn =
      models::CreateForecasterOrDie(mtgnn_config, &rng);
  core::TrainForecaster(mtgnn.get(), split.train, train);
  double mtgnn_mse = core::EvaluateMse(mtgnn.get(), split.test);

  models::ModelConfig lstm_config;
  lstm_config.family = "LSTM";
  lstm_config.num_variables = person.num_variables();
  lstm_config.input_length = input_length;
  std::unique_ptr<models::Forecaster> lstm =
      models::CreateForecasterOrDie(lstm_config, &rng);
  core::TrainForecaster(lstm.get(), split.train, train);
  double lstm_mse = core::EvaluateMse(lstm.get(), split.test);

  std::cout << "test MSE  MTGNN_CORR: " << mtgnn_mse << "\n";
  std::cout << "test MSE  LSTM:       " << lstm_mse << "\n";

  // 5. Serve: snapshot the trained MTGNN (v2 format, config embedded) into
  //    a directory and answer a request through the inference engine — the
  //    tape-free, arena-backed path a deployment would run.
  std::filesystem::path snapshot_dir =
      std::filesystem::temp_directory_path() / "emaf_quickstart_snapshots";
  std::filesystem::create_directories(snapshot_dir);
  std::string snapshot = (snapshot_dir / (person.id + ".snapshot")).string();
  Status saved =
      models::SaveForecasterSnapshot(mtgnn.get(), mtgnn_config, snapshot);
  if (!saved.ok()) {
    std::cerr << "snapshot failed: " << saved.ToString() << "\n";
    return 1;
  }

  Result<serve::InferenceEngine> engine =
      serve::InferenceEngine::Load(snapshot_dir.string());
  if (!engine.ok()) {
    std::cerr << "engine load failed: " << engine.status().ToString() << "\n";
    return 1;
  }
  tensor::Tensor last_window = tensor::Slice(
      split.test.inputs, 0, split.test.num_windows() - 1,
      split.test.num_windows());
  Result<tensor::Tensor> forecast =
      engine.value().Forecast(person.id, last_window);
  if (!forecast.ok()) {
    std::cerr << "forecast failed: " << forecast.status().ToString() << "\n";
    return 1;
  }
  std::cout << "served 1-step forecast for " << person.id << " ("
            << forecast.value().shape().ToString() << ") from " << snapshot
            << "\n";
  return 0;
}
