// Learned-graph workflow (Experiment C, Fig. 2 right branch): train MTGNN
// with graph learning on one participant, checkpoint the model, export its
// learned adjacency, and feed that graph to ASTGCN to see whether the
// learned structure transfers.
//
//   ./build/examples/learned_graph_export [output_dir] [epochs]

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "graph/metrics.h"
#include "models/astgcn.h"
#include "models/mtgnn.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

int main(int argc, char** argv) {
  using namespace emaf;  // NOLINT: example brevity
  std::string output_dir = argc > 1 ? argv[1] : "/tmp";
  int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 60;
  const int64_t seq = 5;

  data::GeneratorConfig gen;
  gen.days = 14;
  gen.seed = 4;
  data::Individual person = data::GenerateIndividual(gen, 0);
  data::IndividualSplit split = data::MakeSplit(person, seq);

  // Static correlation prior (built on training rows only, GDT 20%).
  graph::GraphBuildOptions options;
  options.metric = graph::GraphMetric::kCorrelation;
  tensor::Tensor train_rows =
      tensor::Slice(person.observations, 0, 0, split.split_row);
  graph::AdjacencyMatrix static_graph = graph::KeepTopFraction(
      graph::BuildSimilarityGraph(train_rows, options), 0.2);

  // 1. Train MTGNN with graph learning initialized from the prior.
  Rng rng(11);
  models::MtgnnConfig mtgnn_config;
  models::Mtgnn mtgnn(&static_graph, person.num_variables(), seq,
                      mtgnn_config, &rng);
  core::TrainConfig train;
  train.epochs = epochs;
  core::TrainForecaster(&mtgnn, split.train, train);
  double mtgnn_mse = core::EvaluateMse(&mtgnn, split.test);
  std::cout << "MTGNN test MSE: " << FormatFixed(mtgnn_mse, 3) << "\n";

  // 2. Checkpoint the trained model.
  std::string ckpt = output_dir + "/mtgnn_individual0.emaf";
  Status saved = nn::SaveParameters(&mtgnn, ckpt);
  std::cout << "checkpoint: " << (saved.ok() ? ckpt : saved.ToString())
            << "\n";

  // 3. Export the learned graph and compare to the static prior.
  graph::AdjacencyMatrix learned = mtgnn.CurrentAdjacency();
  graph::AdjacencyMatrix learned_sym = learned;
  learned_sym.Symmetrize();
  learned_sym.ZeroDiagonal();
  std::cout << "learned-vs-static correlation: "
            << FormatFixed(graph::GraphCorrelation(learned_sym, static_graph),
                           3)
            << "  (paper reports ~0.88)\n";
  std::string graph_csv = output_dir + "/learned_graph.csv";
  if (data::SaveAdjacencyCsv(learned, graph_csv).ok()) {
    std::cout << "learned graph exported to " << graph_csv << "\n";
  }

  // 4. Feed the (symmetrized, GDT-matched) learned graph to ASTGCN.
  graph::AdjacencyMatrix learned_sparse =
      graph::KeepTopFraction(learned_sym, 0.2);
  Rng rng_ast(12);
  models::AstgcnConfig ast_config;
  models::Astgcn astgcn_static(static_graph, seq, ast_config, &rng_ast);
  core::TrainForecaster(&astgcn_static, split.train, train);
  double static_mse = core::EvaluateMse(&astgcn_static, split.test);

  Rng rng_ast2(12);  // same init, different graph: isolates the graph effect
  models::Astgcn astgcn_learned(learned_sparse, seq, ast_config, &rng_ast2);
  core::TrainForecaster(&astgcn_learned, split.train, train);
  double learned_mse = core::EvaluateMse(&astgcn_learned, split.test);

  std::cout << "ASTGCN with static CORR graph:   "
            << FormatFixed(static_mse, 3) << "\n"
            << "ASTGCN with MTGNN-learned graph: "
            << FormatFixed(learned_mse, 3) << "  ("
            << FormatFixed(100.0 * (learned_mse - static_mse) / static_mse, 1)
            << "% change)\n";
  return 0;
}
