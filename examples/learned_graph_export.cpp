// Learned-graph workflow (Experiment C, Fig. 2 right branch): train MTGNN
// with graph learning on one participant, checkpoint the model, export its
// learned adjacency, and feed that graph to ASTGCN to see whether the
// learned structure transfers.
//
//   ./build/examples/learned_graph_export [output_dir] [epochs]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "graph/metrics.h"
#include "models/mtgnn.h"
#include "models/registry.h"
#include "tensor/ops.h"

int main(int argc, char** argv) {
  using namespace emaf;  // NOLINT: example brevity
  std::string output_dir = argc > 1 ? argv[1] : "/tmp";
  int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 60;
  const int64_t seq = 5;

  data::GeneratorConfig gen;
  gen.days = 14;
  gen.seed = 4;
  data::Individual person = data::GenerateIndividual(gen, 0);
  data::IndividualSplit split = data::MakeSplit(person, seq);

  // Static correlation prior (built on training rows only, GDT 20%).
  graph::GraphBuildOptions options;
  options.metric = graph::GraphMetric::kCorrelation;
  tensor::Tensor train_rows =
      tensor::Slice(person.observations, 0, 0, split.split_row);
  graph::AdjacencyMatrix static_graph = graph::KeepTopFraction(
      graph::BuildSimilarityGraph(train_rows, options), 0.2);

  // 1. Train MTGNN with graph learning initialized from the prior, built
  //    through the model registry (the grid's and the serving engine's
  //    construction path).
  Rng rng(11);
  models::ModelConfig mtgnn_model_config;
  mtgnn_model_config.family = "MTGNN";
  mtgnn_model_config.num_variables = person.num_variables();
  mtgnn_model_config.input_length = seq;
  mtgnn_model_config.adjacency = static_graph;
  std::unique_ptr<models::Forecaster> mtgnn_forecaster =
      models::CreateForecasterOrDie(mtgnn_model_config, &rng);
  auto* mtgnn = dynamic_cast<models::Mtgnn*>(mtgnn_forecaster.get());
  core::TrainConfig train;
  train.epochs = epochs;
  core::TrainForecaster(mtgnn, split.train, train);
  double mtgnn_mse = core::EvaluateMse(mtgnn, split.test);
  std::cout << "MTGNN test MSE: " << FormatFixed(mtgnn_mse, 3) << "\n";

  // 2. Checkpoint the trained model as a v2 snapshot (embedded config), so
  //    serve::InferenceEngine can rebuild it without this source file.
  std::string ckpt = output_dir + "/mtgnn_individual0.snapshot";
  Status saved =
      models::SaveForecasterSnapshot(mtgnn, mtgnn_model_config, ckpt);
  std::cout << "snapshot: " << (saved.ok() ? ckpt : saved.ToString())
            << "\n";

  // 3. Export the learned graph and compare to the static prior.
  graph::AdjacencyMatrix learned = mtgnn->CurrentAdjacency();
  graph::AdjacencyMatrix learned_sym = learned;
  learned_sym.Symmetrize();
  learned_sym.ZeroDiagonal();
  std::cout << "learned-vs-static correlation: "
            << FormatFixed(graph::GraphCorrelation(learned_sym, static_graph),
                           3)
            << "  (paper reports ~0.88)\n";
  std::string graph_csv = output_dir + "/learned_graph.csv";
  if (data::SaveAdjacencyCsv(learned, graph_csv).ok()) {
    std::cout << "learned graph exported to " << graph_csv << "\n";
  }

  // 4. Feed the (symmetrized, GDT-matched) learned graph to ASTGCN.
  graph::AdjacencyMatrix learned_sparse =
      graph::KeepTopFraction(learned_sym, 0.2);
  models::ModelConfig ast_model_config;
  ast_model_config.family = "ASTGCN";
  ast_model_config.num_variables = person.num_variables();
  ast_model_config.input_length = seq;

  Rng rng_ast(12);
  ast_model_config.adjacency = static_graph;
  std::unique_ptr<models::Forecaster> astgcn_static =
      models::CreateForecasterOrDie(ast_model_config, &rng_ast);
  core::TrainForecaster(astgcn_static.get(), split.train, train);
  double static_mse = core::EvaluateMse(astgcn_static.get(), split.test);

  Rng rng_ast2(12);  // same init, different graph: isolates the graph effect
  ast_model_config.adjacency = learned_sparse;
  std::unique_ptr<models::Forecaster> astgcn_learned =
      models::CreateForecasterOrDie(ast_model_config, &rng_ast2);
  core::TrainForecaster(astgcn_learned.get(), split.train, train);
  double learned_mse = core::EvaluateMse(astgcn_learned.get(), split.test);

  std::cout << "ASTGCN with static CORR graph:   "
            << FormatFixed(static_mse, 3) << "\n"
            << "ASTGCN with MTGNN-learned graph: "
            << FormatFixed(learned_mse, 3) << "  ("
            << FormatFixed(100.0 * (learned_mse - static_mse) / static_mse, 1)
            << "% change)\n";
  return 0;
}
