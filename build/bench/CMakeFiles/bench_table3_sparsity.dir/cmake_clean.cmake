file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sparsity.dir/bench_table3_sparsity.cc.o"
  "CMakeFiles/bench_table3_sparsity.dir/bench_table3_sparsity.cc.o.d"
  "bench_table3_sparsity"
  "bench_table3_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
