# Empty dependencies file for bench_table3_sparsity.
# This may be replaced when dependencies are built.
