# Empty dependencies file for bench_ablation_graphlearn.
# This may be replaced when dependencies are built.
