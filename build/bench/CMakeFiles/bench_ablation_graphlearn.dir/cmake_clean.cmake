file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_graphlearn.dir/bench_ablation_graphlearn.cc.o"
  "CMakeFiles/bench_ablation_graphlearn.dir/bench_ablation_graphlearn.cc.o.d"
  "bench_ablation_graphlearn"
  "bench_ablation_graphlearn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_graphlearn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
