# Empty compiler generated dependencies file for bench_fig3_learned_graphs.
# This may be replaced when dependencies are built.
