# Empty dependencies file for bench_ablation_pervariable.
# This may be replaced when dependencies are built.
