file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pervariable.dir/bench_ablation_pervariable.cc.o"
  "CMakeFiles/bench_ablation_pervariable.dir/bench_ablation_pervariable.cc.o.d"
  "bench_ablation_pervariable"
  "bench_ablation_pervariable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pervariable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
