# Empty compiler generated dependencies file for emaf.
# This may be replaced when dependencies are built.
