file(REMOVE_RECURSE
  "libemaf.a"
)
