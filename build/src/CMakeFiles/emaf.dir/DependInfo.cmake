
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cc" "src/CMakeFiles/emaf.dir/common/env.cc.o" "gcc" "src/CMakeFiles/emaf.dir/common/env.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/emaf.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/emaf.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/emaf.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/emaf.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/emaf.dir/common/status.cc.o" "gcc" "src/CMakeFiles/emaf.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/emaf.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/emaf.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/emaf.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/emaf.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/emaf.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/emaf.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/emaf.dir/core/report.cc.o" "gcc" "src/CMakeFiles/emaf.dir/core/report.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/emaf.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/emaf.dir/core/trainer.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/emaf.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/emaf.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/emaf.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/emaf.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/ema_items.cc" "src/CMakeFiles/emaf.dir/data/ema_items.cc.o" "gcc" "src/CMakeFiles/emaf.dir/data/ema_items.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/emaf.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/emaf.dir/data/generator.cc.o.d"
  "/root/repo/src/graph/adjacency.cc" "src/CMakeFiles/emaf.dir/graph/adjacency.cc.o" "gcc" "src/CMakeFiles/emaf.dir/graph/adjacency.cc.o.d"
  "/root/repo/src/graph/construction.cc" "src/CMakeFiles/emaf.dir/graph/construction.cc.o" "gcc" "src/CMakeFiles/emaf.dir/graph/construction.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/CMakeFiles/emaf.dir/graph/metrics.cc.o" "gcc" "src/CMakeFiles/emaf.dir/graph/metrics.cc.o.d"
  "/root/repo/src/graph/spectral.cc" "src/CMakeFiles/emaf.dir/graph/spectral.cc.o" "gcc" "src/CMakeFiles/emaf.dir/graph/spectral.cc.o.d"
  "/root/repo/src/models/a3tgcn.cc" "src/CMakeFiles/emaf.dir/models/a3tgcn.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/a3tgcn.cc.o.d"
  "/root/repo/src/models/astgcn.cc" "src/CMakeFiles/emaf.dir/models/astgcn.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/astgcn.cc.o.d"
  "/root/repo/src/models/forecaster.cc" "src/CMakeFiles/emaf.dir/models/forecaster.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/forecaster.cc.o.d"
  "/root/repo/src/models/lstm_forecaster.cc" "src/CMakeFiles/emaf.dir/models/lstm_forecaster.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/lstm_forecaster.cc.o.d"
  "/root/repo/src/models/mtgnn.cc" "src/CMakeFiles/emaf.dir/models/mtgnn.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/mtgnn.cc.o.d"
  "/root/repo/src/models/var_baseline.cc" "src/CMakeFiles/emaf.dir/models/var_baseline.cc.o" "gcc" "src/CMakeFiles/emaf.dir/models/var_baseline.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/emaf.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/emaf.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/emaf.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/graph_conv.cc" "src/CMakeFiles/emaf.dir/nn/graph_conv.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/graph_conv.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/emaf.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/emaf.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/emaf.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/emaf.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/emaf.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/CMakeFiles/emaf.dir/nn/rnn.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/rnn.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/emaf.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/emaf.dir/nn/serialize.cc.o.d"
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/emaf.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/grad_check.cc" "src/CMakeFiles/emaf.dir/tensor/grad_check.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/grad_check.cc.o.d"
  "/root/repo/src/tensor/ops_activation.cc" "src/CMakeFiles/emaf.dir/tensor/ops_activation.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_activation.cc.o.d"
  "/root/repo/src/tensor/ops_conv.cc" "src/CMakeFiles/emaf.dir/tensor/ops_conv.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_conv.cc.o.d"
  "/root/repo/src/tensor/ops_elementwise.cc" "src/CMakeFiles/emaf.dir/tensor/ops_elementwise.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_elementwise.cc.o.d"
  "/root/repo/src/tensor/ops_loss.cc" "src/CMakeFiles/emaf.dir/tensor/ops_loss.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_loss.cc.o.d"
  "/root/repo/src/tensor/ops_matmul.cc" "src/CMakeFiles/emaf.dir/tensor/ops_matmul.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_matmul.cc.o.d"
  "/root/repo/src/tensor/ops_reduce.cc" "src/CMakeFiles/emaf.dir/tensor/ops_reduce.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_reduce.cc.o.d"
  "/root/repo/src/tensor/ops_shape.cc" "src/CMakeFiles/emaf.dir/tensor/ops_shape.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/ops_shape.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/emaf.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/emaf.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/emaf.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/ts/distance.cc" "src/CMakeFiles/emaf.dir/ts/distance.cc.o" "gcc" "src/CMakeFiles/emaf.dir/ts/distance.cc.o.d"
  "/root/repo/src/ts/dtw.cc" "src/CMakeFiles/emaf.dir/ts/dtw.cc.o" "gcc" "src/CMakeFiles/emaf.dir/ts/dtw.cc.o.d"
  "/root/repo/src/ts/normalize.cc" "src/CMakeFiles/emaf.dir/ts/normalize.cc.o" "gcc" "src/CMakeFiles/emaf.dir/ts/normalize.cc.o.d"
  "/root/repo/src/ts/stats.cc" "src/CMakeFiles/emaf.dir/ts/stats.cc.o" "gcc" "src/CMakeFiles/emaf.dir/ts/stats.cc.o.d"
  "/root/repo/src/ts/window.cc" "src/CMakeFiles/emaf.dir/ts/window.cc.o" "gcc" "src/CMakeFiles/emaf.dir/ts/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
