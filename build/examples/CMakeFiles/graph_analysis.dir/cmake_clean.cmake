file(REMOVE_RECURSE
  "CMakeFiles/graph_analysis.dir/graph_analysis.cpp.o"
  "CMakeFiles/graph_analysis.dir/graph_analysis.cpp.o.d"
  "graph_analysis"
  "graph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
