file(REMOVE_RECURSE
  "CMakeFiles/personalized_forecasting.dir/personalized_forecasting.cpp.o"
  "CMakeFiles/personalized_forecasting.dir/personalized_forecasting.cpp.o.d"
  "personalized_forecasting"
  "personalized_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
