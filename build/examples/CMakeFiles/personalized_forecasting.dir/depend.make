# Empty dependencies file for personalized_forecasting.
# This may be replaced when dependencies are built.
