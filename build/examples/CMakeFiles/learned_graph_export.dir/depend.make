# Empty dependencies file for learned_graph_export.
# This may be replaced when dependencies are built.
