file(REMOVE_RECURSE
  "CMakeFiles/learned_graph_export.dir/learned_graph_export.cpp.o"
  "CMakeFiles/learned_graph_export.dir/learned_graph_export.cpp.o.d"
  "learned_graph_export"
  "learned_graph_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_graph_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
