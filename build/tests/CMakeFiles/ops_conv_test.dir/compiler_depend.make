# Empty compiler generated dependencies file for ops_conv_test.
# This may be replaced when dependencies are built.
