file(REMOVE_RECURSE
  "CMakeFiles/ops_conv_test.dir/ops_conv_test.cc.o"
  "CMakeFiles/ops_conv_test.dir/ops_conv_test.cc.o.d"
  "ops_conv_test"
  "ops_conv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
