file(REMOVE_RECURSE
  "CMakeFiles/nn_graph_conv_test.dir/nn_graph_conv_test.cc.o"
  "CMakeFiles/nn_graph_conv_test.dir/nn_graph_conv_test.cc.o.d"
  "nn_graph_conv_test"
  "nn_graph_conv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_graph_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
