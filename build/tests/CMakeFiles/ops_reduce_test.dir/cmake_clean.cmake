file(REMOVE_RECURSE
  "CMakeFiles/ops_reduce_test.dir/ops_reduce_test.cc.o"
  "CMakeFiles/ops_reduce_test.dir/ops_reduce_test.cc.o.d"
  "ops_reduce_test"
  "ops_reduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
