file(REMOVE_RECURSE
  "CMakeFiles/graph_construction_test.dir/graph_construction_test.cc.o"
  "CMakeFiles/graph_construction_test.dir/graph_construction_test.cc.o.d"
  "graph_construction_test"
  "graph_construction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_construction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
