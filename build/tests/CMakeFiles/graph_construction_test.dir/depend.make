# Empty dependencies file for graph_construction_test.
# This may be replaced when dependencies are built.
