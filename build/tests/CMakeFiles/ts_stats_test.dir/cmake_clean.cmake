file(REMOVE_RECURSE
  "CMakeFiles/ts_stats_test.dir/ts_stats_test.cc.o"
  "CMakeFiles/ts_stats_test.dir/ts_stats_test.cc.o.d"
  "ts_stats_test"
  "ts_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
