file(REMOVE_RECURSE
  "CMakeFiles/ops_activation_test.dir/ops_activation_test.cc.o"
  "CMakeFiles/ops_activation_test.dir/ops_activation_test.cc.o.d"
  "ops_activation_test"
  "ops_activation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_activation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
