# Empty compiler generated dependencies file for ops_activation_test.
# This may be replaced when dependencies are built.
