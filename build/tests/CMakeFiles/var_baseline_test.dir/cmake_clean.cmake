file(REMOVE_RECURSE
  "CMakeFiles/var_baseline_test.dir/var_baseline_test.cc.o"
  "CMakeFiles/var_baseline_test.dir/var_baseline_test.cc.o.d"
  "var_baseline_test"
  "var_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/var_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
