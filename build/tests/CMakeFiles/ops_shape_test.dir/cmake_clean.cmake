file(REMOVE_RECURSE
  "CMakeFiles/ops_shape_test.dir/ops_shape_test.cc.o"
  "CMakeFiles/ops_shape_test.dir/ops_shape_test.cc.o.d"
  "ops_shape_test"
  "ops_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
