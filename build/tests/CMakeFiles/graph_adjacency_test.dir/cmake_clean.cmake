file(REMOVE_RECURSE
  "CMakeFiles/graph_adjacency_test.dir/graph_adjacency_test.cc.o"
  "CMakeFiles/graph_adjacency_test.dir/graph_adjacency_test.cc.o.d"
  "graph_adjacency_test"
  "graph_adjacency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_adjacency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
