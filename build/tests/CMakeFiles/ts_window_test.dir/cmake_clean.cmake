file(REMOVE_RECURSE
  "CMakeFiles/ts_window_test.dir/ts_window_test.cc.o"
  "CMakeFiles/ts_window_test.dir/ts_window_test.cc.o.d"
  "ts_window_test"
  "ts_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
