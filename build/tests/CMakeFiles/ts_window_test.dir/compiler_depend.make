# Empty compiler generated dependencies file for ts_window_test.
# This may be replaced when dependencies are built.
