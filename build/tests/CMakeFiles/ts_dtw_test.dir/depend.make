# Empty dependencies file for ts_dtw_test.
# This may be replaced when dependencies are built.
