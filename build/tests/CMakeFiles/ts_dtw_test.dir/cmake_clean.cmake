file(REMOVE_RECURSE
  "CMakeFiles/ts_dtw_test.dir/ts_dtw_test.cc.o"
  "CMakeFiles/ts_dtw_test.dir/ts_dtw_test.cc.o.d"
  "ts_dtw_test"
  "ts_dtw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_dtw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
