# Empty compiler generated dependencies file for graph_spectral_test.
# This may be replaced when dependencies are built.
