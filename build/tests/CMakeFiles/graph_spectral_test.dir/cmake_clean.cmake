file(REMOVE_RECURSE
  "CMakeFiles/graph_spectral_test.dir/graph_spectral_test.cc.o"
  "CMakeFiles/graph_spectral_test.dir/graph_spectral_test.cc.o.d"
  "graph_spectral_test"
  "graph_spectral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
