file(REMOVE_RECURSE
  "CMakeFiles/ops_elementwise_test.dir/ops_elementwise_test.cc.o"
  "CMakeFiles/ops_elementwise_test.dir/ops_elementwise_test.cc.o.d"
  "ops_elementwise_test"
  "ops_elementwise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_elementwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
