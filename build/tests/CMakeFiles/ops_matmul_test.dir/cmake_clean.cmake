file(REMOVE_RECURSE
  "CMakeFiles/ops_matmul_test.dir/ops_matmul_test.cc.o"
  "CMakeFiles/ops_matmul_test.dir/ops_matmul_test.cc.o.d"
  "ops_matmul_test"
  "ops_matmul_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
