file(REMOVE_RECURSE
  "CMakeFiles/mtgnn_learner_test.dir/mtgnn_learner_test.cc.o"
  "CMakeFiles/mtgnn_learner_test.dir/mtgnn_learner_test.cc.o.d"
  "mtgnn_learner_test"
  "mtgnn_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtgnn_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
