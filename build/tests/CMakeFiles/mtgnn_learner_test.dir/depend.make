# Empty dependencies file for mtgnn_learner_test.
# This may be replaced when dependencies are built.
