file(REMOVE_RECURSE
  "CMakeFiles/nn_rnn_test.dir/nn_rnn_test.cc.o"
  "CMakeFiles/nn_rnn_test.dir/nn_rnn_test.cc.o.d"
  "nn_rnn_test"
  "nn_rnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_rnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
