// Micro-benchmarks for the numeric substrate at the exact shapes the EMA
// experiments use (V = 26 variables, batches of ~100 windows, hidden 32).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "graph/spectral.h"
#include "models/registry.h"
#include "tensor/ops.h"
#include "ts/dtw.h"

namespace emaf {
namespace {

using tensor::Shape;
using tensor::Tensor;

void BM_MatMulShared(benchmark::State& state) {
  Rng rng(1);
  int64_t rows = state.range(0);
  Tensor a = Tensor::Normal(Shape{rows, 96}, 0, 1, &rng);
  Tensor b = Tensor::Normal(Shape{96, 32}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * rows * 96 * 32);
}
BENCHMARK(BM_MatMulShared)->Arg(1024)->Arg(8192);

void BM_MatMulBatched(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Normal(Shape{64, 26, 26}, 0, 1, &rng);
  Tensor b = Tensor::Normal(Shape{64, 26, 26}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMulBatched);

void BM_Conv2dInception(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::Normal(Shape{96, 32, 26, 5}, 0, 1, &rng);
  Tensor w = Tensor::Normal(Shape{16, 32, 1, 3}, 0, 0.1, &rng);
  Tensor bias = Tensor::Normal(Shape{16}, 0, 0.1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Conv2d(x, w, bias, {}));
  }
}
BENCHMARK(BM_Conv2dInception);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Normal(Shape{96, 32, 26, 5}, 0, 1, &rng);
  Tensor w =
      Tensor::Normal(Shape{16, 32, 1, 3}, 0, 0.1, &rng).SetRequiresGrad(true);
  Tensor bias = Tensor::Normal(Shape{16}, 0, 0.1, &rng);
  for (auto _ : state) {
    Tensor loss = tensor::Sum(tensor::Conv2d(x, w, bias, {}));
    loss.Backward();
    w.ZeroGrad();
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor x = Tensor::Normal(Shape{96, 26, 26}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Softmax(x, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_DtwPair(benchmark::State& state) {
  Rng rng(6);
  int64_t len = state.range(0);
  std::vector<double> a(static_cast<size_t>(len));
  std::vector<double> b(static_cast<size_t>(len));
  rng.FillNormal(&a, 0, 1);
  rng.FillNormal(&b, 0, 1);
  ts::DtwOptions options;
  options.window = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwPair)->Arg(100)->Arg(200);

void BM_GraphConstruction(benchmark::State& state) {
  data::GeneratorConfig gen;
  gen.days = 18;
  gen.seed = 9;
  data::Individual person = data::GenerateIndividual(gen, 0);
  graph::GraphBuildOptions options;
  options.metric = static_cast<graph::GraphMetric>(state.range(0));
  options.dtw_window = 16;
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::BuildSimilarityGraph(person.observations, options, &rng));
  }
  state.SetLabel(
      graph::GraphMetricName(static_cast<graph::GraphMetric>(state.range(0))));
}
BENCHMARK(BM_GraphConstruction)->DenseRange(0, 4);

void BM_ChebyshevStack(benchmark::State& state) {
  data::GeneratorConfig gen;
  gen.days = 18;
  gen.seed = 9;
  data::Individual person = data::GenerateIndividual(gen, 0);
  graph::GraphBuildOptions options;
  options.metric = graph::GraphMetric::kCorrelation;
  graph::AdjacencyMatrix adj =
      graph::BuildSimilarityGraph(person.observations, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ChebyshevPolynomials(adj, 3));
  }
}
BENCHMARK(BM_ChebyshevStack);

// Builds the named family through the model registry — the same path the
// experiment grid and the serving engine use.
std::unique_ptr<models::Forecaster> MakeRegistryModel(
    const char* family, const graph::AdjacencyMatrix& adj, Rng* rng) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = adj.num_nodes();
  config.input_length = 5;
  if (config.family != "LSTM" && config.family != "VAR") {
    config.adjacency = adj;
  }
  return models::CreateForecasterOrDie(config, rng);
}

// One full training epoch per model at paper-like sizes: the unit of cost
// for every experiment bench.
template <typename MakeModel>
void EpochBenchmark(benchmark::State& state, MakeModel make) {
  data::GeneratorConfig gen;
  gen.days = 18;
  gen.seed = 9;
  data::Individual person = data::GenerateIndividual(gen, 0);
  data::IndividualSplit split = data::MakeSplit(person, 5);
  graph::GraphBuildOptions options;
  options.metric = graph::GraphMetric::kCorrelation;
  graph::AdjacencyMatrix adj = graph::KeepTopFraction(
      graph::BuildSimilarityGraph(person.observations, options), 0.2);
  Rng rng(11);
  auto model = make(adj, &rng);
  core::TrainConfig config;
  config.epochs = 1;
  for (auto _ : state) {
    core::TrainForecaster(model.get(), split.train, config);
  }
}

void BM_EpochLstm(benchmark::State& state) {
  EpochBenchmark(state, [](const graph::AdjacencyMatrix& adj, Rng* rng) {
    return MakeRegistryModel("LSTM", adj, rng);
  });
}
BENCHMARK(BM_EpochLstm);

void BM_EpochA3tgcn(benchmark::State& state) {
  EpochBenchmark(state, [](const graph::AdjacencyMatrix& adj, Rng* rng) {
    return MakeRegistryModel("A3TGCN", adj, rng);
  });
}
BENCHMARK(BM_EpochA3tgcn);

void BM_EpochAstgcn(benchmark::State& state) {
  EpochBenchmark(state, [](const graph::AdjacencyMatrix& adj, Rng* rng) {
    return MakeRegistryModel("ASTGCN", adj, rng);
  });
}
BENCHMARK(BM_EpochAstgcn);

void BM_EpochMtgnn(benchmark::State& state) {
  EpochBenchmark(state, [](const graph::AdjacencyMatrix& adj, Rng* rng) {
    return MakeRegistryModel("MTGNN", adj, rng);
  });
}
BENCHMARK(BM_EpochMtgnn);

}  // namespace
}  // namespace emaf

BENCHMARK_MAIN();
