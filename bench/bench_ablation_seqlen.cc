// Ablation — input-sequence length beyond the paper's Seq1/2/5 ("more
// experiments should be conducted on the most appropriate length of the
// input data sequence", Section VII-C). Sweeps L = 1..8 for the LSTM
// baseline and MTGNN_CORR.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/report.h"

namespace emaf {
namespace {

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("ablation_seqlen", scale);
  bench::PrintScale("Ablation: input sequence length L = 1..8", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  core::ExperimentRunner runner(data::GenerateCohort(config.generator),
                                config);

  const std::vector<int64_t> lengths = {1, 2, 3, 5, 8};
  core::TablePrinter table({"Model", "L=1", "L=2", "L=3", "L=5", "L=8"});
  for (core::ModelKind model :
       {core::ModelKind::kLstm, core::ModelKind::kMtgnn}) {
    core::CellSpec spec;
    spec.model = model;
    spec.metric = graph::GraphMetric::kCorrelation;
    spec.gdt = 0.2;
    std::vector<std::string> row = {spec.Label()};
    for (int64_t length : lengths) {
      spec.input_length = length;
      row.push_back(core::FormatMeanStd(runner.RunCellOrDie(spec).stats));
      std::cerr << "[seqlen] " << spec.Label() << " L=" << length << " done\n";
    }
    table.AddRow(std::move(row));
  }
  table.HighlightColumnMinima();
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "ablation_seqlen");
  std::cout << "\nPaper trend: multi-step input mildly better than Seq1; "
               "gains flatten with longer windows.\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
