// Table III — Experiment B: effect of graph-density threshold
// (GDT = 20% / 40% / 100%) per metric, including the random-graph control
// (averaged over several draws), with 5-step input.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"

namespace emaf {
namespace {

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("table3_sparsity", scale);
  bench::PrintScale("Table III: Experiment B — graph sparsity (GDT)", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  const std::vector<double> gdts = {0.2, 0.4, 1.0};
  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kDtw,
      graph::GraphMetric::kKnn, graph::GraphMetric::kCorrelation,
      graph::GraphMetric::kRandom};
  const std::vector<core::ModelKind> models = {core::ModelKind::kA3tgcn,
                                               core::ModelKind::kAstgcn,
                                               core::ModelKind::kMtgnn};

  core::TablePrinter table({"Model", "GDT = 20%", "GDT = 40%", "GDT = 100%"});
  for (graph::GraphMetric metric : metrics) {
    for (core::ModelKind model : models) {
      core::CellSpec spec;
      spec.model = model;
      spec.metric = metric;
      spec.input_length = 5;
      std::vector<std::string> row = {spec.Label()};
      for (double gdt : gdts) {
        spec.gdt = gdt;
        row.push_back(core::FormatMeanStd(runner.RunCellOrDie(spec).stats));
      }
      table.AddRow(row);
      std::cerr << "[table3] " << spec.Label() << " done\n";
    }
  }
  table.HighlightColumnMinima();
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "table3_sparsity");
  std::cout << "\nPaper reference: MTGNN_CORR best (~0.84) with little GDT "
               "sensitivity; dense CORR helps ASTGCN/A3TGCN; random graphs "
               "hurt ASTGCN most (~1.06) while MTGNN recovers via graph "
               "learning (~0.85).\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
