// Open-loop serving benchmark (ISSUE PR-6): stands up the epoll server on
// a manifest-backed snapshot directory where many tenant ids alias a few
// physical snapshots laid out in sharded subdirectories — 100k tenants by
// default, the million-tenant story at bench scale — then drives a
// Zipf-distributed tenant mix at a sweep of target request rates and
// reports p50/p99/p999 latency and the rejection rate per point.
//
// Open-loop means the sender paces by the target rate, not by completions:
// when the server saturates, the admission queue fills and the overflow
// comes back as structured kUnavailable frames — the rejection-rate curve
// IS the backpressure contract measured end to end.
//
// Scale knobs (env):
//   EMAF_BENCH_TENANTS           manifest tenant count   (default 100000)
//   EMAF_BENCH_UNIQUE_SNAPSHOTS  physical snapshots      (default 32)
//   EMAF_BENCH_REQUESTS          requests per QPS point  (default 2000)
//   EMAF_BENCH_QPS               comma list of targets   (default
//                                "2000,8000,32000")
//   EMAF_BENCH_ZIPF_S            Zipf skew exponent      (default 1.1)
//   EMAF_BENCH_SEED              load-mix seed           (default 42)
//   EMAF_BENCH_DEADLINE_TICKS    per-request deadline    (default 0 = none)
//   EMAF_BENCH_SLA_MS            goodput latency bound   (default 50)
//
// Every reply is classified: ok (and, when under EMAF_BENCH_SLA_MS,
// goodput), rejected (kUnavailable backpressure), deadline_missed
// (kDeadlineExceeded sheds when EMAF_BENCH_DEADLINE_TICKS is set), or
// errors. The sweep starts only after a health probe reports SERVING.
//
// `--smoke` shrinks everything (16 tenants / 4 snapshots / 100 requests /
// one point), runs in well under a second, and then re-reads the emitted
// BENCH_serving.json to verify the schema — the ctest regression gate.
// EMAF_BENCH_JSON_DIR overrides the output directory (default: cwd).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "models/registry.h"
#include "serve/client.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace emaf::bench {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 3;
constexpr int64_t kSteps = 2;

struct ServingScale {
  int64_t tenants = 100000;
  int64_t unique_snapshots = 32;
  int64_t requests = 2000;
  std::vector<double> target_qps = {2000, 8000, 32000};
  double zipf_s = 1.1;
  uint64_t seed = 42;
  uint64_t deadline_ticks = 0;  // 0 = no per-request deadline
  double sla_ms = 50;           // ok replies at/below this count as goodput
  bool smoke = false;
};

ServingScale ReadServingScale(bool smoke) {
  ServingScale scale;
  scale.smoke = smoke;
  scale.tenants = GetEnvInt64("EMAF_BENCH_TENANTS", smoke ? 16 : 100000);
  scale.unique_snapshots =
      GetEnvInt64("EMAF_BENCH_UNIQUE_SNAPSHOTS", smoke ? 4 : 32);
  scale.requests = GetEnvInt64("EMAF_BENCH_REQUESTS", smoke ? 100 : 2000);
  scale.zipf_s = GetEnvDouble("EMAF_BENCH_ZIPF_S", 1.1);
  scale.seed = static_cast<uint64_t>(GetEnvInt64("EMAF_BENCH_SEED", 42));
  scale.deadline_ticks =
      static_cast<uint64_t>(GetEnvInt64("EMAF_BENCH_DEADLINE_TICKS", 0));
  scale.sla_ms = GetEnvDouble("EMAF_BENCH_SLA_MS", 50);
  std::string qps =
      GetEnvString("EMAF_BENCH_QPS", smoke ? "20000" : "2000,8000,32000");
  scale.target_qps.clear();
  std::stringstream stream(qps);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) scale.target_qps.push_back(std::stod(token));
  }
  return scale;
}

// Builds `unique` tiny untrained LSTM snapshots under dir/shards/<nn>/ and
// a MANIFEST aliasing `tenants` ids onto them round-robin — the layout
// ModelStore::Open consumes directly.
Status BuildManifestDir(const std::string& dir, const ServingScale& scale) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  const int64_t shards = std::max<int64_t>(
      1, std::min<int64_t>(16, scale.unique_snapshots));
  std::vector<std::string> relpaths;
  for (int64_t u = 0; u < scale.unique_snapshots; ++u) {
    const int64_t shard = u % shards;
    const std::string shard_dir =
        StrCat(dir, "/shards/", shard < 10 ? "0" : "", shard);
    std::error_code ec;
    fs::create_directories(shard_dir, ec);
    if (ec) return Status::Internal(StrCat("mkdir ", shard_dir));
    models::ModelConfig config;
    config.family = "LSTM";
    config.num_variables = kVars;
    config.input_length = kSteps;
    config.lstm.hidden_units = 4;
    Rng rng(scale.seed + static_cast<uint64_t>(u));
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    const std::string rel = StrCat("shards/", shard < 10 ? "0" : "", shard,
                                   "/uniq_", u, ".snapshot");
    EMAF_RETURN_IF_ERROR(models::SaveForecasterSnapshot(
        model.get(), config, dir + "/" + rel));
    relpaths.push_back(rel);
  }
  std::ofstream manifest(dir + "/" + serve::kManifestFilename);
  if (!manifest) return Status::Internal("cannot write MANIFEST");
  manifest << "# tenant id -> snapshot; " << scale.tenants
           << " tenants over " << scale.unique_snapshots << " snapshots\n";
  for (int64_t t = 0; t < scale.tenants; ++t) {
    manifest << "tenant-" << t << "\t"
             << relpaths[static_cast<size_t>(t) % relpaths.size()] << "\n";
  }
  return Status::Ok();
}

// Tenant popularity ~ 1/rank^s (rank 0 most popular). Sampling is a
// binary search over the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0;
    for (int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int64_t Sample(Rng* rng) const {
    const double u = rng->Uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<int64_t>(cdf_.size()) - 1
                            : static_cast<int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

double PercentileMs(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

struct PointResult {
  double target_qps = 0;
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t goodput = 0;  // ok replies answered within the SLA bound
  int64_t rejected = 0;         // kUnavailable — admission backpressure
  int64_t deadline_missed = 0;  // kDeadlineExceeded — shed past deadline
  int64_t errors = 0;
  double rejection_rate = 0;
  double deadline_miss_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double achieved_qps = 0;
  double goodput_qps = 0;
  double wall_seconds = 0;
};

// One open-loop point: a sender thread paces `requests` pipelined sends at
// `target_qps` while a reader thread drains replies and classifies them.
Result<PointResult> RunPoint(uint16_t port, const ServingScale& scale,
                             double target_qps, const Tensor& window) {
  Result<serve::Client> connected = serve::Client::Connect(port);
  if (!connected.ok()) return connected.status();
  serve::Client client = std::move(connected).value();

  const int64_t requests = scale.requests;
  ZipfSampler zipf(scale.tenants, scale.zipf_s);
  Rng mix_rng(scale.seed * 7919 + static_cast<uint64_t>(target_qps));
  std::vector<std::string> plan(static_cast<size_t>(requests));
  for (auto& tenant : plan) {
    tenant = StrCat("tenant-", zipf.Sample(&mix_rng));
  }

  std::mutex mu;  // guards send_times between sender and reader
  std::vector<std::chrono::steady_clock::time_point> send_times(
      static_cast<size_t>(requests));
  std::atomic<int64_t> sent{0};
  std::atomic<bool> send_failed{false};

  const auto start = std::chrono::steady_clock::now();
  std::thread sender([&] {
    const std::chrono::duration<double> interval(
        target_qps > 0 ? 1.0 / target_qps : 0.0);
    auto next = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(next);
      next += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(interval);
      {
        std::lock_guard<std::mutex> lock(mu);
        send_times[static_cast<size_t>(i)] =
            std::chrono::steady_clock::now();
      }
      Result<uint64_t> id = client.SendForecastRequest(
          plan[static_cast<size_t>(i)], window, scale.deadline_ticks);
      if (!id.ok()) {
        send_failed.store(true);
        return;
      }
      sent.fetch_add(1);
    }
  });

  PointResult point;
  point.target_qps = target_qps;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(requests));
  int64_t received = 0;
  while (received < requests && !send_failed.load()) {
    Result<serve::Frame> reply = client.ReadFrame();
    if (!reply.ok()) {
      // Timeout / closed connection: the remaining replies are errors.
      point.errors += requests - received;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    ++received;
    const uint64_t id = reply.value().request_id;  // ids count from 1
    double ms = 0;
    if (id >= 1 && id <= static_cast<uint64_t>(requests)) {
      std::lock_guard<std::mutex> lock(mu);
      ms = std::chrono::duration<double, std::milli>(
               now - send_times[static_cast<size_t>(id - 1)])
               .count();
    }
    if (reply.value().type == serve::FrameType::kForecastResponse) {
      ++point.ok;
      if (ms <= scale.sla_ms) ++point.goodput;
      latencies_ms.push_back(ms);
    } else if (reply.value().type == serve::FrameType::kError) {
      // Split backpressure from deadline shedding: the structured status
      // travels in the payload.
      Status carried = Status::Ok();
      Status parse =
          serve::DecodeStatusPayload(reply.value().payload, &carried);
      if (parse.ok() && carried.code() == StatusCode::kDeadlineExceeded) {
        ++point.deadline_missed;
      } else if (parse.ok() &&
                 carried.code() == StatusCode::kUnavailable) {
        ++point.rejected;
      } else {
        ++point.errors;
      }
    } else {
      ++point.errors;
    }
  }
  sender.join();
  point.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  point.sent = sent.load();
  if (send_failed.load()) {
    return Status::Unavailable("sender thread failed mid-point");
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  point.p50_ms = PercentileMs(latencies_ms, 0.50);
  point.p99_ms = PercentileMs(latencies_ms, 0.99);
  point.p999_ms = PercentileMs(latencies_ms, 0.999);
  point.rejection_rate =
      point.sent > 0
          ? static_cast<double>(point.rejected) /
                static_cast<double>(point.sent)
          : 0;
  point.deadline_miss_rate =
      point.sent > 0
          ? static_cast<double>(point.deadline_missed) /
                static_cast<double>(point.sent)
          : 0;
  point.achieved_qps =
      point.wall_seconds > 0
          ? static_cast<double>(point.ok) / point.wall_seconds
          : 0;
  point.goodput_qps =
      point.wall_seconds > 0
          ? static_cast<double>(point.goodput) / point.wall_seconds
          : 0;
  return point;
}

std::string ToJson(const ServingScale& scale,
                   const std::vector<PointResult>& points) {
  std::ostringstream out;
  out << "{\"bench\": \"serving\", \"tenants\": " << scale.tenants
      << ", \"unique_snapshots\": " << scale.unique_snapshots
      << ", \"requests_per_point\": " << scale.requests
      << ", \"zipf_s\": " << scale.zipf_s << ", \"seed\": " << scale.seed
      << ", \"deadline_ticks\": " << scale.deadline_ticks
      << ", \"sla_ms\": " << scale.sla_ms
      << ", \"smoke\": " << (scale.smoke ? "true" : "false")
      << ", \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    if (i > 0) out << ", ";
    out << "{\"target_qps\": " << p.target_qps << ", \"sent\": " << p.sent
        << ", \"ok\": " << p.ok << ", \"goodput\": " << p.goodput
        << ", \"rejected\": " << p.rejected
        << ", \"deadline_missed\": " << p.deadline_missed
        << ", \"errors\": " << p.errors
        << ", \"rejection_rate\": " << p.rejection_rate
        << ", \"deadline_miss_rate\": " << p.deadline_miss_rate
        << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
        << ", \"p999_ms\": " << p.p999_ms
        << ", \"achieved_qps\": " << p.achieved_qps
        << ", \"goodput_qps\": " << p.goodput_qps
        << ", \"wall_seconds\": " << p.wall_seconds << "}";
  }
  out << "]}";
  return out.str();
}

// The smoke-mode regression gate: the emitted JSON must carry every schema
// key a trajectory consumer depends on, and the point must account for
// every request it sent.
bool ValidateSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "[smoke] missing " << path << "\n";
    return false;
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  bool ok = true;
  for (const char* key :
       {"\"bench\"", "\"tenants\"", "\"unique_snapshots\"",
        "\"requests_per_point\"", "\"zipf_s\"", "\"deadline_ticks\"",
        "\"sla_ms\"", "\"points\"", "\"target_qps\"", "\"sent\"",
        "\"ok\"", "\"goodput\"", "\"rejected\"", "\"deadline_missed\"",
        "\"errors\"", "\"rejection_rate\"", "\"deadline_miss_rate\"",
        "\"p50_ms\"", "\"p99_ms\"", "\"p999_ms\"", "\"achieved_qps\"",
        "\"goodput_qps\"", "\"wall_seconds\""}) {
    if (json.find(key) == std::string::npos) {
      std::cerr << "[smoke] BENCH_serving.json is missing " << key << "\n";
      ok = false;
    }
  }
  return ok;
}

int Run(bool smoke) {
  const ServingScale scale = ReadServingScale(smoke);
  const std::string dir =
      StrCat(std::filesystem::temp_directory_path().string(),
             "/emaf_bench_serving_", scale.tenants);
  std::cout << "=== serving bench ===\n"
            << "tenants: " << scale.tenants << " (over "
            << scale.unique_snapshots << " physical snapshots), "
            << scale.requests << " requests/point, zipf_s=" << scale.zipf_s
            << (smoke ? " [smoke]" : "") << "\n";

  Status built = BuildManifestDir(dir, scale);
  if (!built.ok()) {
    std::cerr << "setup failed: " << built.ToString() << "\n";
    return 1;
  }
  serve::ServerOptions options;
  // Bound residency like a real multi-tenant box: the store may hold at
  // most half the physical snapshots, so the Zipf tail churns the LRU.
  options.store.max_resident_models =
      std::max<int64_t>(2, scale.unique_snapshots / 2);
  Result<serve::Server> started = serve::Server::Start(dir, options);
  if (!started.ok()) {
    std::cerr << "server start failed: " << started.status().ToString()
              << "\n";
    return 1;
  }
  serve::Server server = std::move(started).value();

  // Health gate: the sweep only starts against a server that says SERVING.
  {
    Result<serve::Client> probe = serve::Client::Connect(server.port());
    if (!probe.ok()) {
      std::cerr << "health probe connect failed: "
                << probe.status().ToString() << "\n";
      return 1;
    }
    Result<serve::HealthInfo> health = probe.value().Health();
    if (!health.ok() ||
        health.value().state != serve::ServeState::kServing) {
      std::cerr << "server not healthy before sweep: "
                << (health.ok() ? "state != SERVING"
                                : health.status().ToString())
                << "\n";
      return 1;
    }
  }
  std::cout << "server on 127.0.0.1:" << server.port() << ", "
            << scale.tenants << " tenants known, health=SERVING\n\n";

  Rng window_rng(scale.seed);
  Tensor window =
      Tensor::Uniform(Shape{1, kSteps, kVars}, -1, 1, &window_rng);

  std::vector<PointResult> points;
  for (double qps : scale.target_qps) {
    Result<PointResult> point = RunPoint(server.port(), scale, qps, window);
    if (!point.ok()) {
      std::cerr << "point " << qps << " qps failed: "
                << point.status().ToString() << "\n";
      return 1;
    }
    const PointResult& p = point.value();
    std::cout << "target " << qps << " qps: sent=" << p.sent
              << " ok=" << p.ok << " goodput=" << p.goodput
              << " rejected=" << p.rejected
              << " deadline_missed=" << p.deadline_missed
              << " errors=" << p.errors << " reject_rate="
              << p.rejection_rate << " miss_rate=" << p.deadline_miss_rate
              << "\n  p50=" << p.p50_ms << "ms p99=" << p.p99_ms
              << "ms p999=" << p.p999_ms << "ms achieved="
              << p.achieved_qps << " qps goodput=" << p.goodput_qps
              << " qps\n";
    points.push_back(p);
  }
  server.Stop();
  std::filesystem::remove_all(dir);

  const std::string json = ToJson(scale, points);
  std::cout << "\n[json] " << json << "\n";
  std::string out_dir = GetEnvString("EMAF_BENCH_JSON_DIR", ".");
  std::string path = out_dir + "/BENCH_serving.json";
  if (out_dir != "-") {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << json << "\n";
  }

  if (smoke) {
    if (out_dir == "-" || !ValidateSchema(path)) return 1;
    // Accounting must close: every sent request was answered or counted,
    // and goodput can never exceed the ok replies it is carved from.
    for (const PointResult& p : points) {
      if (p.ok + p.rejected + p.deadline_missed + p.errors != p.sent ||
          p.sent == 0) {
        std::cerr << "[smoke] request accounting does not close\n";
        return 1;
      }
      if (p.goodput > p.ok) {
        std::cerr << "[smoke] goodput exceeds ok\n";
        return 1;
      }
    }
    std::cout << "[smoke] BENCH_serving.json schema OK\n";
  }
  return 0;
}

}  // namespace
}  // namespace emaf::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  return emaf::bench::Run(smoke);
}
