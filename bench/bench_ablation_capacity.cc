// Ablation — hidden-unit capacity (Section V-D: "Through experiments using
// 16 or 32 hidden units, we determined that setting all layers to 32 ...
// yielded the optimal performance"). Re-runs the Seq5 / CORR / GDT 20%
// cell with 16 vs 32 hidden units for every model.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"

namespace emaf {
namespace {

void SetHidden(core::ExperimentConfig* config, int64_t hidden) {
  config->lstm.hidden_units = hidden;
  config->a3tgcn.hidden_units = hidden;
  config->astgcn.hidden_units = hidden;
  config->mtgnn.residual_channels = hidden;
  config->mtgnn.conv_channels = hidden;
  config->mtgnn.skip_channels = hidden;
  config->mtgnn.end_channels = 2 * hidden;
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("ablation_capacity", scale);
  bench::PrintScale("Ablation: hidden units 16 vs 32", scale);

  core::TablePrinter table({"Model", "hidden=16", "hidden=32"});
  std::vector<std::vector<std::string>> rows;
  const std::vector<core::ModelKind> models = {
      core::ModelKind::kLstm, core::ModelKind::kA3tgcn,
      core::ModelKind::kAstgcn, core::ModelKind::kMtgnn};
  for (core::ModelKind model : models) {
    core::CellSpec spec;
    spec.model = model;
    spec.metric = graph::GraphMetric::kCorrelation;
    spec.gdt = 0.2;
    spec.input_length = 5;
    rows.push_back({spec.Label()});
  }

  for (int64_t hidden : {16, 32}) {
    core::ExperimentConfig config = bench::MakeConfig(scale);
    SetHidden(&config, hidden);
    core::ExperimentRunner runner(data::GenerateCohort(config.generator),
                                  config);
    for (size_t m = 0; m < models.size(); ++m) {
      core::CellSpec spec;
      spec.model = models[m];
      spec.metric = graph::GraphMetric::kCorrelation;
      spec.gdt = 0.2;
      spec.input_length = 5;
      rows[m].push_back(core::FormatMeanStd(runner.RunCellOrDie(spec).stats));
      std::cerr << "[capacity] " << spec.Label() << " hidden=" << hidden
                << " done\n";
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "ablation_capacity");
  std::cout << "\nPaper: 32 hidden units were selected as optimal.\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
