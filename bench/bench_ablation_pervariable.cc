// Ablation — per-variable MSE decomposition ("the effects across the MSE
// scores when predicting each of the variables should be further
// investigated", Section VII-C). Trains LSTM and MTGNN_CORR on each
// individual and reports per-item MSE averaged across the cohort, grouped
// by EMA block.

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/report.h"
#include "data/ema_items.h"
#include "models/registry.h"

namespace emaf {
namespace {

const char* BlockName(data::EmaBlock block) {
  switch (block) {
    case data::EmaBlock::kPositiveAffect:
      return "positive_affect";
    case data::EmaBlock::kNegativeAffect:
      return "negative_affect";
    case data::EmaBlock::kBehaviorContext:
      return "behavior_context";
  }
  return "?";
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("ablation_pervariable", scale);
  bench::PrintScale("Ablation: per-variable MSE decomposition", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);
  const int64_t seq = 5;

  std::vector<double> lstm_mse(26, 0.0);
  std::vector<double> mtgnn_mse(26, 0.0);
  for (int64_t i = 0; i < cohort.size(); ++i) {
    const data::Individual& person = cohort.individuals[static_cast<size_t>(i)];
    data::IndividualSplit split = data::MakeSplit(person, seq);
    Rng rng(static_cast<uint64_t>(1000 + i));

    // Both models come from the registry (the grid's and the serving
    // engine's construction path); the Rng stream matches the former
    // inline constructors exactly.
    models::ModelConfig lstm_config;
    lstm_config.family = "LSTM";
    lstm_config.num_variables = person.num_variables();
    lstm_config.input_length = seq;
    lstm_config.lstm = config.lstm;
    std::unique_ptr<models::Forecaster> lstm =
        models::CreateForecasterOrDie(lstm_config, &rng);
    core::TrainForecaster(lstm.get(), split.train, config.train);
    std::vector<double> lstm_pv =
        core::EvaluatePerVariableMse(lstm.get(), split.test);

    models::ModelConfig mtgnn_config;
    mtgnn_config.family = "MTGNN";
    mtgnn_config.num_variables = person.num_variables();
    mtgnn_config.input_length = seq;
    mtgnn_config.mtgnn = config.mtgnn;
    mtgnn_config.adjacency =
        runner.BuildStaticGraph(i, graph::GraphMetric::kCorrelation, 0.2);
    std::unique_ptr<models::Forecaster> mtgnn =
        models::CreateForecasterOrDie(mtgnn_config, &rng);
    core::TrainForecaster(mtgnn.get(), split.train, config.train);
    std::vector<double> mtgnn_pv =
        core::EvaluatePerVariableMse(mtgnn.get(), split.test);

    for (size_t v = 0; v < 26; ++v) {
      lstm_mse[v] += lstm_pv[v];
      mtgnn_mse[v] += mtgnn_pv[v];
    }
    std::cerr << "[pervariable] individual " << i << " done\n";
  }

  const std::vector<data::EmaItem>& items = data::EmaItemCatalog();
  core::TablePrinter table({"Item", "Block", "LSTM", "MTGNN_CORR", "delta"});
  std::map<std::string, std::pair<double, double>> block_totals;
  std::map<std::string, int> block_counts;
  double n = static_cast<double>(cohort.size());
  for (size_t v = 0; v < 26; ++v) {
    double lstm_v = lstm_mse[v] / n;
    double mtgnn_v = mtgnn_mse[v] / n;
    table.AddRow({items[v].name, BlockName(items[v].block),
                  FormatFixed(lstm_v, 3), FormatFixed(mtgnn_v, 3),
                  FormatFixed(mtgnn_v - lstm_v, 3)});
    auto& totals = block_totals[BlockName(items[v].block)];
    totals.first += lstm_v;
    totals.second += mtgnn_v;
    ++block_counts[BlockName(items[v].block)];
  }
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "ablation_pervariable");

  std::cout << "\nBlock means (LSTM -> MTGNN):\n";
  for (const auto& [block, totals] : block_totals) {
    int count = block_counts[block];
    std::cout << "  " << block << ": " << FormatFixed(totals.first / count, 3)
              << " -> " << FormatFixed(totals.second / count, 3) << "\n";
  }
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
