// Table II — Experiment A: GNN models vs the LSTM baseline with single-
// and multi-step input (Seq1 / Seq2 / Seq5), four static graphs at
// GDT = 20%. Cells are MSE mean(std) across individuals, best per column
// marked '*', exactly as the paper highlights best scores.
//
// Extension rows: VAR(L) ridge baseline (the classic psychopathology
// comparator) for context.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"
#include "models/var_baseline.h"

namespace emaf {
namespace {

core::AggregateStats VarRow(const data::Cohort& cohort, int64_t input_length) {
  std::vector<double> mses;
  for (const data::Individual& person : cohort.individuals) {
    data::IndividualSplit split = data::MakeSplit(person, input_length);
    models::VarBaseline var(/*ridge=*/25.0);
    var.Fit(split.train.inputs, split.train.targets);
    mses.push_back(
        core::MseBetween(var.Predict(split.test.inputs), split.test.targets));
  }
  return core::Aggregate(mses);
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("table2_models", scale);
  bench::PrintScale("Table II: Experiment A — GNN models vs LSTM", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  const std::vector<int64_t> seq_lengths = {1, 2, 5};
  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kDtw,
      graph::GraphMetric::kKnn, graph::GraphMetric::kCorrelation};
  const std::vector<core::ModelKind> gnn_models = {
      core::ModelKind::kA3tgcn, core::ModelKind::kAstgcn,
      core::ModelKind::kMtgnn};

  core::TablePrinter table({"Model", "Seq1", "Seq2", "Seq5"});

  // Baseline LSTM row.
  {
    std::vector<std::string> row = {"Baseline LSTM"};
    for (int64_t seq : seq_lengths) {
      core::CellSpec spec;
      spec.model = core::ModelKind::kLstm;
      spec.input_length = seq;
      row.push_back(core::FormatMeanStd(runner.RunCell(spec).stats));
    }
    table.AddRow(row);
    std::cerr << "[table2] LSTM done\n";
  }

  // GNN rows, grouped by metric as in the paper.
  for (graph::GraphMetric metric : metrics) {
    for (core::ModelKind model : gnn_models) {
      core::CellSpec spec;
      spec.model = model;
      spec.metric = metric;
      spec.gdt = 0.2;
      std::vector<std::string> row = {spec.Label()};
      for (int64_t seq : seq_lengths) {
        spec.input_length = seq;
        row.push_back(core::FormatMeanStd(runner.RunCell(spec).stats));
      }
      table.AddRow(row);
      std::cerr << "[table2] " << spec.Label() << " done\n";
    }
  }

  // Extension: closed-form VAR ridge baseline.
  {
    std::vector<std::string> row = {"VAR ridge (ext.)"};
    for (int64_t seq : seq_lengths) {
      row.push_back(core::FormatMeanStd(VarRow(cohort, seq)));
    }
    table.AddRow(row);
  }

  table.HighlightColumnMinima();
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "table2_models");
  std::cout << "\nPaper reference (100 individuals, 300 epochs): LSTM "
               "1.02-1.03, A3TGCN ~1.03, ASTGCN 0.88-0.91, MTGNN 0.84-0.87; "
               "multi-step input slightly better than Seq1.\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
