// Table II — Experiment A: GNN models vs the LSTM baseline with single-
// and multi-step input (Seq1 / Seq2 / Seq5), four static graphs at
// GDT = 20%. Cells are MSE mean(std) across individuals, best per column
// marked '*', exactly as the paper highlights best scores.
//
// Extension rows: VAR(L) ridge baseline (the classic psychopathology
// comparator) for context.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"
#include "models/registry.h"
#include "models/var_forecaster.h"

namespace emaf {
namespace {

core::AggregateStats VarRow(const data::Cohort& cohort, int64_t input_length) {
  std::vector<double> mses;
  for (const data::Individual& person : cohort.individuals) {
    data::IndividualSplit split = data::MakeSplit(person, input_length);
    // VAR through the registry, like every served family (Table 2 "VAR").
    models::ModelConfig config;
    config.family = "VAR";
    config.num_variables = person.num_variables();
    config.input_length = input_length;
    config.var.ridge = 25.0;
    Rng rng(0);  // VAR construction draws nothing; Fit is closed-form
    std::unique_ptr<models::Forecaster> var =
        models::CreateForecasterOrDie(config, &rng);
    dynamic_cast<models::VarForecaster*>(var.get())
        ->Fit(split.train.inputs, split.train.targets);
    mses.push_back(core::EvaluateMse(var.get(), split.test));
  }
  return core::Aggregate(mses);
}

void Run(const bench::GridFlags& flags) {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("table2_models", scale);
  bench::PrintScale("Table II: Experiment A — GNN models vs LSTM", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  const std::vector<int64_t> seq_lengths = {1, 2, 5};
  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kDtw,
      graph::GraphMetric::kKnn, graph::GraphMetric::kCorrelation};
  const std::vector<core::ModelKind> gnn_models = {
      core::ModelKind::kA3tgcn, core::ModelKind::kAstgcn,
      core::ModelKind::kMtgnn};

  // One flat grid (row-major: each table row's three seq cells are
  // adjacent) run through RunGrid, so the whole bench checkpoints to
  // --journal and resumes with --resume, and a failed cell degrades to a
  // FAILED(CODE) table entry instead of aborting the run.
  std::vector<core::CellSpec> grid;
  for (int64_t seq : seq_lengths) {
    core::CellSpec spec;
    spec.model = core::ModelKind::kLstm;
    spec.input_length = seq;
    grid.push_back(spec);
  }
  for (graph::GraphMetric metric : metrics) {
    for (core::ModelKind model : gnn_models) {
      for (int64_t seq : seq_lengths) {
        core::CellSpec spec;
        spec.model = model;
        spec.metric = metric;
        spec.gdt = 0.2;
        spec.input_length = seq;
        grid.push_back(spec);
      }
    }
  }
  core::GridResult result = runner.RunGrid(grid, bench::ToGridOptions(flags));
  if (result.num_resumed > 0) {
    std::cerr << "[table2] resumed " << result.num_resumed
              << " cell(s) from " << flags.journal_path << "\n";
  }
  if (result.num_failed > 0) {
    std::cerr << "[table2] " << result.num_failed
              << " cell(s) failed (see rows marked FAILED)\n";
  }

  core::TablePrinter table({"Model", "Seq1", "Seq2", "Seq5"});
  size_t next = 0;
  auto take_row = [&](const std::string& label) {
    std::vector<std::string> row = {label};
    for (size_t s = 0; s < seq_lengths.size(); ++s) {
      row.push_back(bench::FormatCellOutcome(result.cells[next++]));
    }
    table.AddRow(row);
  };
  take_row("Baseline LSTM");
  for (size_t r = 0; r < metrics.size() * gnn_models.size(); ++r) {
    take_row(result.cells[next].spec.Label());
  }

  // Extension: closed-form VAR ridge baseline.
  {
    std::vector<std::string> row = {"VAR ridge (ext.)"};
    for (int64_t seq : seq_lengths) {
      row.push_back(core::FormatMeanStd(VarRow(cohort, seq)));
    }
    table.AddRow(row);
  }

  table.HighlightColumnMinima();
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "table2_models");
  std::cout << "\nPaper reference (100 individuals, 300 epochs): LSTM "
               "1.02-1.03, A3TGCN ~1.03, ASTGCN 0.88-0.91, MTGNN 0.84-0.87; "
               "multi-step input slightly better than Seq1.\n";
}

}  // namespace
}  // namespace emaf

int main(int argc, char** argv) {
  emaf::Run(emaf::bench::ParseGridFlags(argc, argv, "table2_models"));
  return 0;
}
