// Ablation — graph-learning mechanisms (paper Section VII-C: "graphs
// learned by advanced methods, such as GTS and NRI, should be further
// compared to both static and MTGNN-learned graphs"). Compares, on the
// Seq5 / CORR / GDT 20% cell:
//   1. no graph learning (static CORR graph only)
//   2. MTGNN embedding learner + static prior (the paper's setup)
//   3. MTGNN embedding learner from random init (no prior)
//   4. GTS-style edge-logit learner initialized from the static graph
//   5. GTS-style edge-logit learner from random init

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/report.h"
#include "graph/metrics.h"
#include "models/mtgnn.h"
#include "models/registry.h"

namespace emaf {
namespace {

struct Variant {
  std::string name;
  bool learning;
  models::GraphLearnerKind kind;
  bool use_prior;
};

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("ablation_graphlearn", scale);
  bench::PrintScale("Ablation: graph-learning mechanisms", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);
  const int64_t seq = 5;

  const std::vector<Variant> variants = {
      {"static CORR only", false, models::GraphLearnerKind::kEmbedding, true},
      {"embedding + CORR prior", true, models::GraphLearnerKind::kEmbedding,
       true},
      {"embedding, random start", true,
       models::GraphLearnerKind::kEmbedding, false},
      {"edge-logits + CORR init", true,
       models::GraphLearnerKind::kEdgeLogits, true},
      {"edge-logits, random start", true,
       models::GraphLearnerKind::kEdgeLogits, false},
  };

  core::TablePrinter table(
      {"Graph learner", "MSE mean(std)", "learned~static corr"});
  for (const Variant& variant : variants) {
    std::vector<double> mses;
    double correlation = 0.0;
    for (int64_t i = 0; i < cohort.size(); ++i) {
      const data::Individual& person =
          cohort.individuals[static_cast<size_t>(i)];
      data::IndividualSplit split = data::MakeSplit(person, seq);
      graph::AdjacencyMatrix static_graph =
          runner.BuildStaticGraph(i, graph::GraphMetric::kCorrelation, 0.2);
      models::MtgnnConfig mtgnn_config = config.mtgnn;
      mtgnn_config.use_graph_learning = variant.learning;
      mtgnn_config.learner_kind = variant.kind;
      if (!variant.use_prior) mtgnn_config.static_prior_weight = 0.0;
      Rng rng(static_cast<uint64_t>(500 + i));
      models::ModelConfig model_config;
      model_config.family = "MTGNN";
      model_config.num_variables = person.num_variables();
      model_config.input_length = seq;
      model_config.mtgnn = mtgnn_config;
      if (variant.use_prior || !variant.learning) {
        model_config.adjacency = static_graph;
      }
      std::unique_ptr<models::Forecaster> forecaster =
          models::CreateForecasterOrDie(model_config, &rng);
      auto* model = dynamic_cast<models::Mtgnn*>(forecaster.get());
      core::TrainForecaster(model, split.train, config.train);
      mses.push_back(core::EvaluateMse(model, split.test));
      graph::AdjacencyMatrix learned = model->CurrentAdjacency();
      learned.Symmetrize();
      learned.ZeroDiagonal();
      correlation += graph::GraphCorrelation(learned, static_graph);
    }
    table.AddRow({variant.name,
                  core::FormatMeanStd(core::Aggregate(mses)),
                  FormatFixed(correlation / cohort.size(), 3)});
    std::cerr << "[graphlearn] " << variant.name << " done\n";
  }
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "ablation_graphlearn");
  std::cout << "\nPaper context: MTGNN's learned graphs (initialized from "
               "static or random) reach ~0.84 MSE and correlate ~0.88 with "
               "the static graphs; GTS/NRI-style learners are future work "
               "this ablation prototypes.\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
