// Shared harness for the experiment benchmarks (one binary per paper
// table/figure — see DESIGN.md).
//
// Scale control: every binary honours
//   EMAF_BENCH_INDIVIDUALS  cohort size                  (default 2)
//   EMAF_BENCH_EPOCHS       training epochs per model    (default varies)
//   EMAF_BENCH_DAYS         study length in days         (default 14)
//   EMAF_BENCH_SEED         cohort + training seed       (default 42)
//   EMAF_BENCH_RAND_REPEATS random-graph averaging draws (default 2)
//   EMAF_BENCH_WEIGHT_DECAY Adam weight decay            (default 0)
//   EMAF_BENCH_FULL=1       paper scale: 100 individuals, 28 days,
//                           300 epochs, 5 random repeats
// The defaults reproduce the paper's qualitative shape in minutes on one
// core; EMAF_BENCH_FULL reproduces the full protocol (hours).

#ifndef EMAF_BENCH_BENCH_COMMON_H_
#define EMAF_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/experiment.h"
#include "core/report.h"
#include "data/generator.h"

namespace emaf::bench {

struct BenchScale {
  int64_t individuals;
  int64_t epochs;
  int64_t days;
  int64_t random_repeats;
  uint64_t seed;
  double weight_decay;
  bool full;
};

inline BenchScale ReadScale(int64_t default_epochs) {
  BenchScale scale;
  scale.full = GetEnvBool("EMAF_BENCH_FULL", false);
  scale.individuals =
      GetEnvInt64("EMAF_BENCH_INDIVIDUALS", scale.full ? 100 : 2);
  scale.epochs = GetEnvInt64("EMAF_BENCH_EPOCHS",
                             scale.full ? 300 : default_epochs);
  scale.days = GetEnvInt64("EMAF_BENCH_DAYS", scale.full ? 28 : 14);
  scale.random_repeats =
      GetEnvInt64("EMAF_BENCH_RAND_REPEATS", scale.full ? 5 : 2);
  scale.seed = static_cast<uint64_t>(GetEnvInt64("EMAF_BENCH_SEED", 42));
  scale.weight_decay = GetEnvDouble("EMAF_BENCH_WEIGHT_DECAY", 0.0);
  return scale;
}

// Paper-faithful model/training configuration (Section V-D) at the chosen
// cohort scale.
inline core::ExperimentConfig MakeConfig(const BenchScale& scale) {
  core::ExperimentConfig config;
  config.generator.num_individuals = scale.individuals;
  config.generator.days = scale.days;
  config.generator.seed = scale.seed;
  config.train.epochs = scale.epochs;
  config.train.weight_decay = scale.weight_decay;
  config.random_graph_repeats = scale.random_repeats;
  config.seed = scale.seed;
  return config;
}

// Checkpoint/resume plumbing for grid benches (see DESIGN.md, "Fault
// tolerance"). `--journal <path>` (or EMAF_BENCH_JOURNAL) appends every
// completed cell to a crash-tolerant journal; `--resume` reloads it and
// skips recorded cells, reproducing the uninterrupted run byte-for-byte.
// --resume without an explicit path defaults to <bench>.journal in cwd.
struct GridFlags {
  std::string journal_path;
  bool resume = false;
};

inline GridFlags ParseGridFlags(int argc, char** argv,
                                const std::string& bench_name) {
  GridFlags flags;
  flags.journal_path = GetEnvString("EMAF_BENCH_JOURNAL", "");
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--journal" && i + 1 < argc) {
      flags.journal_path = argv[++i];
    }
  }
  if (flags.resume && flags.journal_path.empty()) {
    flags.journal_path = bench_name + ".journal";
  }
  return flags;
}

inline core::GridOptions ToGridOptions(const GridFlags& flags) {
  core::GridOptions options;
  options.journal_path = flags.journal_path;
  options.resume = flags.resume;
  return options;
}

// Table cell for one grid outcome: mean(std) on success, a structured
// FAILED(CODE) marker on graceful degradation — the bench keeps printing
// the rest of the table instead of aborting.
inline std::string FormatCellOutcome(const core::CellOutcome& outcome) {
  if (outcome.status.ok()) {
    return core::FormatMeanStd(outcome.result.stats);
  }
  return StrCat("FAILED(", StatusCodeName(outcome.status.code()), ")");
}

// Writes `table` as CSV into $EMAF_BENCH_CSV_DIR/<name>.csv when that
// directory variable is set; silent no-op otherwise.
inline void MaybeWriteCsv(const core::TablePrinter& table,
                          const std::string& name) {
  std::string dir = GetEnvString("EMAF_BENCH_CSV_DIR", "");
  if (dir.empty()) return;
  std::string path = dir + "/" + name + ".csv";
  Status status = table.WriteCsv(path);
  if (status.ok()) {
    std::cout << "\n[csv] " << path << "\n";
  } else {
    std::cout << "\n[csv] failed: " << status.ToString() << "\n";
  }
}

inline void PrintScale(const char* title, const BenchScale& scale) {
  std::cout << "=== " << title << " ===\n"
            << "scale: " << scale.individuals << " individuals, "
            << scale.days << " days, " << scale.epochs << " epochs, seed "
            << scale.seed << ", "
            << common::ThreadPool::Global().num_threads() << " thread(s)"
            << (scale.full ? " [FULL]" : " [reduced]") << "\n"
            << "(set EMAF_BENCH_FULL=1 for the paper-scale protocol, "
               "EMAF_NUM_THREADS=N to parallelize)\n\n";
}

// RAII run reporter: measures the bench's wall clock and, on destruction,
// prints one JSON line and writes BENCH_<name>.json next to it. The record
// carries the thread count so BENCH_*.json trajectories stay comparable
// across PRs (a faster wall clock at 4 threads is not a kernel win), and —
// when the build has instrumentation compiled in (EMAF_METRICS=ON, the
// default) — a "metrics" object holding the obs::Registry snapshot of the
// run (counters / gauges / histograms; the registry is reset when the
// reporter is constructed so the snapshot covers exactly this run).
// EMAF_BENCH_JSON_DIR overrides the output directory (default: cwd);
// EMAF_BENCH_JSON_DIR=- disables the file, keeping the stdout line.
// If EMAF_TRACE_FILE is set, the buffered trace spans are flushed here too.
class RunReporter {
 public:
  RunReporter(std::string name, const BenchScale& scale)
      : name_(std::move(name)),
        scale_(scale),
        start_(std::chrono::steady_clock::now()) {
    obs::Registry::Global().Reset();
  }

  RunReporter(const RunReporter&) = delete;
  RunReporter& operator=(const RunReporter&) = delete;

  ~RunReporter() {
    double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::string json = StrCat(
        "{\"bench\": \"", name_, "\", \"wall_seconds\": ", wall_seconds,
        ", \"threads\": ", common::ThreadPool::Global().num_threads(),
        ", \"individuals\": ", scale_.individuals,
        ", \"epochs\": ", scale_.epochs, ", \"days\": ", scale_.days,
        ", \"seed\": ", scale_.seed,
        ", \"full\": ", scale_.full ? "true" : "false");
    obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
    if (!snapshot.empty()) {
      json = StrCat(json, ", \"metrics\": ", snapshot.ToJson());
    }
    json += "}";
    std::cout << "\n[json] " << json << "\n";
    if (obs::Trace::Enabled()) {
      Status trace_status = obs::Trace::Flush();
      if (!trace_status.ok()) {
        std::cout << "[trace] " << trace_status.ToString() << "\n";
      }
    }
    std::string dir = GetEnvString("EMAF_BENCH_JSON_DIR", ".");
    if (dir == "-") return;
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) {
      out << json << "\n";
    } else {
      std::cout << "[json] failed to write " << path << "\n";
    }
  }

 private:
  std::string name_;
  BenchScale scale_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace emaf::bench

#endif  // EMAF_BENCH_BENCH_COMMON_H_
