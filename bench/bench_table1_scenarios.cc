// Table I — the examined scenario grid (GNN models x graph structure x
// graph sparsity) plus, for substance, the structural statistics of every
// constructed graph and its recovery of the generator's ground-truth
// network (an analysis the original study could not run).
//
// No training happens here; this bench characterizes the graph-construction
// subsystem and runs in seconds.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/report.h"
#include "graph/construction.h"
#include "graph/metrics.h"

namespace emaf {
namespace {

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/0);
  bench::RunReporter reporter("table1_scenarios", scale);
  bench::PrintScale("Table I: examined scenarios", scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  std::cout << "Scenario grid (paper Table I):\n"
            << "  GNN models:      A3TGCN, ASTGCN, MTGNN\n"
            << "  Graph structure: EUC, kNN, DTW, CORR, GNN-learned, RAND\n"
            << "  Graph sparsity:  GDT = 20%, 40%, 100%\n\n";

  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kKnn,
      graph::GraphMetric::kDtw, graph::GraphMetric::kCorrelation,
      graph::GraphMetric::kRandom};
  const std::vector<double> gdts = {0.2, 0.4, 1.0};

  core::TablePrinter table({"Graph", "GDT", "density", "mean_deg", "max_deg",
                            "isolated", "truth_F1", "corr_vs_CORR"});
  for (graph::GraphMetric metric : metrics) {
    for (double gdt : gdts) {
      double density = 0.0;
      double mean_deg = 0.0;
      double max_deg = 0.0;
      double isolated = 0.0;
      double truth_f1 = 0.0;
      double corr_similarity = 0.0;
      for (int64_t i = 0; i < cohort.size(); ++i) {
        graph::AdjacencyMatrix adj = runner.BuildStaticGraph(i, metric, gdt);
        graph::DegreeStats stats = graph::ComputeDegreeStats(adj);
        density += adj.Density();
        mean_deg += stats.mean_degree;
        max_deg += stats.max_degree;
        isolated += static_cast<double>(stats.isolated_nodes);
        truth_f1 += graph::ScoreEdgeRecovery(
                        adj, *cohort.individuals[i].ground_truth_network)
                        .f1;
        corr_similarity += graph::GraphCorrelation(
            adj, runner.BuildStaticGraph(
                     i, graph::GraphMetric::kCorrelation, gdt));
      }
      double n = static_cast<double>(cohort.size());
      table.AddRow({graph::GraphMetricName(metric), FormatFixed(gdt, 1),
                    FormatFixed(density / n, 3), FormatFixed(mean_deg / n, 1),
                    FormatFixed(max_deg / n, 1), FormatFixed(isolated / n, 1),
                    FormatFixed(truth_f1 / n, 3),
                    FormatFixed(corr_similarity / n, 3)});
    }
  }
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "table1_scenarios");
  std::cout << "\ntruth_F1: how well the graph's strongest edges recover the\n"
               "generator's ground-truth interaction network (higher is\n"
               "better; RAND is the chance floor).\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
