// Serving-latency bench: trains all five forecaster families on one
// synthetic individual, snapshots them, loads the serve::InferenceEngine,
// and measures per-request forecast latency and heap allocations per
// request with and without the inference arena. The "no_arena" pass calls
// core::Predict directly on the loaded models (every tensor buffer is a
// fresh heap allocation); the "arena" pass goes through the engine, whose
// shared InferenceArena recycles buffers so steady-state requests
// allocate nothing.
//
// Emits BENCH_inference.json (EMAF_BENCH_JSON_DIR, default cwd):
//   {"bench": "inference", ..., "no_arena": {"p50_seconds", "p99_seconds",
//    "allocs_per_request"}, "arena": {...}, "arena_hit_rate"}
// allocs_per_request comes from the tensor.storage_allocs counter and is
// reported as -1 when the build has metrics compiled out.
//
//   EMAF_BENCH_INFER_REQUESTS  timed requests per pass (default 512)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/metrics.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "models/registry.h"
#include "models/var_forecaster.h"
#include "serve/inference_engine.h"
#include "tensor/ops.h"

namespace emaf {
namespace {

struct PassStats {
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double allocs_per_request = -1.0;  // -1: metrics compiled out
};

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

uint64_t StorageAllocs() {
  return obs::Registry::Global()
      .GetCounter("tensor.storage_allocs")
      ->value();
}

std::string PassJson(const PassStats& stats) {
  return StrCat("{\"p50_seconds\": ", stats.p50_seconds,
                ", \"p99_seconds\": ", stats.p99_seconds,
                ", \"allocs_per_request\": ", stats.allocs_per_request, "}");
}

// Runs `requests` forecasts round-robin over the ids, timing each request
// and counting storage allocations across the pass.
template <typename ForecastOnce>
PassStats TimedPass(const std::vector<std::string>& ids, int64_t requests,
                    ForecastOnce forecast) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  uint64_t allocs_before = StorageAllocs();
  for (int64_t r = 0; r < requests; ++r) {
    const std::string& id = ids[static_cast<size_t>(r) % ids.size()];
    auto start = std::chrono::steady_clock::now();
    forecast(id);
    latencies.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  uint64_t allocs_after = StorageAllocs();
  std::sort(latencies.begin(), latencies.end());
  PassStats stats;
  stats.p50_seconds = Quantile(latencies, 0.5);
  stats.p99_seconds = Quantile(latencies, 0.99);
  if (obs::kMetricsEnabled) {
    stats.allocs_per_request =
        static_cast<double>(allocs_after - allocs_before) /
        static_cast<double>(requests);
  }
  return stats;
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/5);
  bench::PrintScale("Serving: request latency, arena on/off", scale);
  const int64_t requests = GetEnvInt64("EMAF_BENCH_INFER_REQUESTS", 512);
  const int64_t seq = 5;
  auto wall_start = std::chrono::steady_clock::now();

  // One individual, five snapshots — one per registry family, trained just
  // enough to have non-degenerate weights (latency does not depend on fit
  // quality).
  data::GeneratorConfig gen;
  gen.days = scale.days;
  gen.seed = scale.seed;
  data::Individual person = data::GenerateIndividual(gen, 0);
  data::IndividualSplit split = data::MakeSplit(person, seq);
  graph::GraphBuildOptions graph_options;
  graph_options.metric = graph::GraphMetric::kCorrelation;
  graph::AdjacencyMatrix adj = graph::KeepTopFraction(
      graph::BuildSimilarityGraph(person.observations, graph_options), 0.2);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "emaf_bench_inference";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::TrainConfig train;
  train.epochs = scale.epochs;
  for (const char* family : {"LSTM", "VAR", "A3TGCN", "ASTGCN", "MTGNN"}) {
    models::ModelConfig config;
    config.family = family;
    config.num_variables = person.num_variables();
    config.input_length = seq;
    if (config.family != "LSTM" && config.family != "VAR") {
      config.adjacency = adj;
    }
    Rng rng(scale.seed);
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    if (auto* var = dynamic_cast<models::VarForecaster*>(model.get())) {
      var->Fit(split.train.inputs, split.train.targets);
    } else {
      core::TrainForecaster(model.get(), split.train, train);
    }
    std::string path = (dir / (std::string(family) + ".snapshot")).string();
    Status saved = models::SaveForecasterSnapshot(model.get(), config, path);
    EMAF_CHECK(saved.ok()) << saved.ToString();
  }

  Result<serve::InferenceEngine> engine = serve::InferenceEngine::Load(
      dir.string());
  EMAF_CHECK(engine.ok()) << engine.status().ToString();
  std::vector<std::string> ids = engine.value().individual_ids();
  Rng window_rng(scale.seed + 1);
  tensor::Tensor window = tensor::Tensor::Uniform(
      tensor::Shape{1, seq, person.num_variables()}, -1, 1, &window_rng);

  // Warm up both paths once per model so lazy first-request work (arena
  // cold misses, page faults in fresh weights) stays out of the timings.
  for (const std::string& id : ids) {
    core::Predict(engine.value().model(id), window);
    Result<tensor::Tensor> warm = engine.value().Forecast(id, window);
    EMAF_CHECK(warm.ok()) << warm.status().ToString();
  }

  PassStats no_arena = TimedPass(ids, requests, [&](const std::string& id) {
    core::Predict(engine.value().model(id), window);
  });
  PassStats arena = TimedPass(ids, requests, [&](const std::string& id) {
    Result<tensor::Tensor> out = engine.value().Forecast(id, window);
    EMAF_CHECK(out.ok()) << out.status().ToString();
  });
  tensor::InferenceArena::Stats arena_stats = engine.value().arena_stats();
  double hit_rate =
      arena_stats.hits + arena_stats.misses == 0
          ? 0.0
          : static_cast<double>(arena_stats.hits) /
                static_cast<double>(arena_stats.hits + arena_stats.misses);

  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::string json = StrCat(
      "{\"bench\": \"inference\", \"wall_seconds\": ", wall_seconds,
      ", \"threads\": ", common::ThreadPool::Global().num_threads(),
      ", \"requests\": ", requests, ", \"families\": ", ids.size(),
      ", \"no_arena\": ", PassJson(no_arena),
      ", \"arena\": ", PassJson(arena),
      ", \"arena_hit_rate\": ", hit_rate, "}");

  std::cout << "requests per pass: " << requests << " across " << ids.size()
            << " families\n"
            << "no arena: p50 " << no_arena.p50_seconds * 1e6 << "us, p99 "
            << no_arena.p99_seconds * 1e6 << "us, allocs/request "
            << no_arena.allocs_per_request << "\n"
            << "arena:    p50 " << arena.p50_seconds * 1e6 << "us, p99 "
            << arena.p99_seconds * 1e6 << "us, allocs/request "
            << arena.allocs_per_request << " (hit rate "
            << FormatFixed(hit_rate, 4) << ")\n";
  std::cout << "\n[json] " << json << "\n";

  std::string json_dir = GetEnvString("EMAF_BENCH_JSON_DIR", ".");
  if (json_dir != "-") {
    std::string path = json_dir + "/BENCH_inference.json";
    std::ofstream out(path);
    if (out) {
      out << json << "\n";
    } else {
      std::cout << "[json] failed to write " << path << "\n";
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
