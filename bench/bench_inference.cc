// Serving-latency bench: trains all five forecaster families on one
// synthetic individual, snapshots them, loads the serve::InferenceEngine,
// and measures per-request forecast latency and heap allocations per
// request with and without the inference arena. The "no_arena" pass calls
// core::Predict directly on the loaded models (every tensor buffer is a
// fresh heap allocation); the "arena" pass goes through the engine, whose
// shared InferenceArena recycles buffers so steady-state requests
// allocate nothing.
//
// A third pass measures the multi-tenant ModelStore under a constrained
// budget: 32 tiny snapshots on disk, 8 resident, a Zipf-ish request mix
// (rank r drawn with probability ~ 1/(r+1)), so the head of the
// distribution stays warm while the tail churns through cold loads and
// evictions. Each request is classified cold/warm by the cold_loads delta
// around it, giving the cold-load vs warm-acquire latency split.
//
// A fourth pass measures compiled inference plans (src/plan/): the same
// engine requests with EngineOptions.use_compiled_plans on vs off. The
// "arena" pass pins use_compiled_plans=false so it keeps measuring the
// module path (tape-free core::Predict through the shared arena); the
// "plan" pass replays the recorded op plan and also reports how many
// interpreter instructions each request executed and how many fused
// elementwise chains the five compiled plans contain.
//
// Emits BENCH_inference.json (EMAF_BENCH_JSON_DIR, default cwd):
//   {"bench": "inference", ..., "no_arena": {"p50_seconds", "p99_seconds",
//    "allocs_per_request"}, "arena": {...}, "arena_hit_rate",
//    "plan": {"p50_seconds", "p99_seconds", "allocs_per_request",
//     "instructions_per_request", "fused_chains"},
//    "store": {"models_on_disk", "max_resident", "requests",
//     "cold": {"p50_seconds", "p99_seconds"}, "warm": {...},
//     "hit_rate", "cold_loads", "evictions"},
//    "dtype": {"f64": {"module": {...}, "plan": {...}},
//     "f32": {"module": {...}, "plan": {...}},
//     "max_abs_error_f32_vs_f64", "plan_p50_speedup_f32_vs_f64"}}
// The dtype section compares EngineOptions::inference_dtype f64 vs f32
// over the same snapshots: the four paths run interleaved request by
// request, max_abs_error_f32_vs_f64 is the largest forecast-element
// divergence of the f32 plan path from the f64 plan path across the five
// families, and the speedup field is f64-plan p50 over f32-plan p50.
// allocs_per_request comes from the tensor.storage_allocs counter and is
// reported as -1 (like the plan instruction/fusion fields) when the build
// has metrics compiled out.
//
//   EMAF_BENCH_INFER_REQUESTS  timed requests per pass (default 512)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/metrics.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "models/registry.h"
#include "models/var_forecaster.h"
#include "serve/inference_engine.h"
#include "serve/model_store.h"
#include "tensor/ops.h"

namespace emaf {
namespace {

struct PassStats {
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double allocs_per_request = -1.0;  // -1: metrics compiled out
};

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

uint64_t StorageAllocs() {
  return obs::Registry::Global()
      .GetCounter("tensor.storage_allocs")
      ->value();
}

std::string PassJson(const PassStats& stats) {
  return StrCat("{\"p50_seconds\": ", stats.p50_seconds,
                ", \"p99_seconds\": ", stats.p99_seconds,
                ", \"allocs_per_request\": ", stats.allocs_per_request, "}");
}

// Runs `requests` forecasts round-robin over the ids, timing each request
// and counting storage allocations across the pass.
template <typename ForecastOnce>
PassStats TimedPass(const std::vector<std::string>& ids, int64_t requests,
                    ForecastOnce forecast) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  uint64_t allocs_before = StorageAllocs();
  for (int64_t r = 0; r < requests; ++r) {
    const std::string& id = ids[static_cast<size_t>(r) % ids.size()];
    auto start = std::chrono::steady_clock::now();
    forecast(id);
    latencies.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  uint64_t allocs_after = StorageAllocs();
  std::sort(latencies.begin(), latencies.end());
  PassStats stats;
  stats.p50_seconds = Quantile(latencies, 0.5);
  stats.p99_seconds = Quantile(latencies, 0.99);
  if (obs::kMetricsEnabled) {
    stats.allocs_per_request =
        static_cast<double>(allocs_after - allocs_before) /
        static_cast<double>(requests);
  }
  return stats;
}

struct StoreStats {
  double cold_p50 = 0.0, cold_p99 = 0.0;
  double warm_p50 = 0.0, warm_p99 = 0.0;
  double hit_rate = 0.0;
  uint64_t cold_loads = 0;
  uint64_t evictions = 0;
  int64_t models_on_disk = 0;
  int64_t max_resident = 0;
  int64_t requests = 0;
};

// Constrained-budget scenario: many tenants, few residency slots, skewed
// traffic. Models are tiny and untrained — store behavior (lock shards,
// LRU bookkeeping, snapshot reads) is what's being measured, not kernels.
StoreStats RunStoreScenario(int64_t requests) {
  constexpr int64_t kTenants = 32;
  constexpr int64_t kBudget = 8;
  constexpr int64_t kVars = 3;
  constexpr int64_t kSteps = 2;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "emaf_bench_model_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (int64_t i = 0; i < kTenants; ++i) {
    models::ModelConfig config;
    config.family = "LSTM";
    config.num_variables = kVars;
    config.input_length = kSteps;
    config.lstm.hidden_units = 4;
    Rng rng(2000 + static_cast<uint64_t>(i));
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    std::string id = StrCat("t", i < 10 ? "0" : "", i);
    Status saved = models::SaveForecasterSnapshot(
        model.get(), config, (dir / (id + ".snapshot")).string());
    EMAF_CHECK(saved.ok()) << saved.ToString();
  }

  serve::ModelStoreOptions options;
  options.max_resident_models = kBudget;
  Result<serve::ModelStore> store =
      serve::ModelStore::Open(dir.string(), options);
  EMAF_CHECK(store.ok()) << store.status().ToString();
  std::vector<std::string> ids = store.value().individual_ids();

  // Zipf-ish CDF over tenant ranks: weight(r) = 1/(r+1).
  std::vector<double> cdf(ids.size());
  double total = 0.0;
  for (size_t r = 0; r < ids.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  Rng mix_rng(4242);
  tensor::Tensor window = tensor::Tensor::Uniform(
      tensor::Shape{1, kSteps, kVars}, -1, 1, &mix_rng);
  std::vector<double> cold_latencies;
  std::vector<double> warm_latencies;
  for (int64_t r = 0; r < requests; ++r) {
    double u = mix_rng.Uniform();
    size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    rank = std::min(rank, ids.size() - 1);
    uint64_t cold_before = store.value().stats().cold_loads;
    auto start = std::chrono::steady_clock::now();
    Result<serve::ModelHandle> handle = store.value().Get(ids[rank]);
    EMAF_CHECK(handle.ok()) << handle.status().ToString();
    core::Predict(handle.value().get(), window);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    bool cold = store.value().stats().cold_loads != cold_before;
    (cold ? cold_latencies : warm_latencies).push_back(seconds);
  }

  serve::ModelStore::Stats stats = store.value().stats();
  StoreStats result;
  std::sort(cold_latencies.begin(), cold_latencies.end());
  std::sort(warm_latencies.begin(), warm_latencies.end());
  result.cold_p50 = Quantile(cold_latencies, 0.5);
  result.cold_p99 = Quantile(cold_latencies, 0.99);
  result.warm_p50 = Quantile(warm_latencies, 0.5);
  result.warm_p99 = Quantile(warm_latencies, 0.99);
  result.hit_rate = stats.lookups == 0
                        ? 0.0
                        : static_cast<double>(stats.warm_hits) /
                              static_cast<double>(stats.lookups);
  result.cold_loads = stats.cold_loads;
  result.evictions = stats.evictions;
  result.models_on_disk = kTenants;
  result.max_resident = kBudget;
  result.requests = requests;
  std::filesystem::remove_all(dir);
  return result;
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/5);
  bench::PrintScale("Serving: request latency, arena on/off", scale);
  const int64_t requests = GetEnvInt64("EMAF_BENCH_INFER_REQUESTS", 512);
  const int64_t seq = 5;
  auto wall_start = std::chrono::steady_clock::now();

  // One individual, five snapshots — one per registry family, trained just
  // enough to have non-degenerate weights (latency does not depend on fit
  // quality).
  data::GeneratorConfig gen;
  gen.days = scale.days;
  gen.seed = scale.seed;
  data::Individual person = data::GenerateIndividual(gen, 0);
  data::IndividualSplit split = data::MakeSplit(person, seq);
  graph::GraphBuildOptions graph_options;
  graph_options.metric = graph::GraphMetric::kCorrelation;
  graph::AdjacencyMatrix adj = graph::KeepTopFraction(
      graph::BuildSimilarityGraph(person.observations, graph_options), 0.2);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "emaf_bench_inference";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::TrainConfig train;
  train.epochs = scale.epochs;
  for (const char* family : {"LSTM", "VAR", "A3TGCN", "ASTGCN", "MTGNN"}) {
    models::ModelConfig config;
    config.family = family;
    config.num_variables = person.num_variables();
    config.input_length = seq;
    if (config.family != "LSTM" && config.family != "VAR") {
      config.adjacency = adj;
    }
    Rng rng(scale.seed);
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    if (auto* var = dynamic_cast<models::VarForecaster*>(model.get())) {
      var->Fit(split.train.inputs, split.train.targets);
    } else {
      core::TrainForecaster(model.get(), split.train, train);
    }
    std::string path = (dir / (std::string(family) + ".snapshot")).string();
    Status saved = models::SaveForecasterSnapshot(model.get(), config, path);
    EMAF_CHECK(saved.ok()) << saved.ToString();
  }

  // Two engines over the same snapshots: `engine` pins the module path
  // (plans off) so the no_arena/arena passes keep their historical
  // meaning; `plan_engine` serves from compiled plans (the default).
  serve::EngineOptions module_options;
  module_options.use_compiled_plans = false;
  Result<serve::InferenceEngine> engine = serve::InferenceEngine::Load(
      dir.string(), module_options);
  EMAF_CHECK(engine.ok()) << engine.status().ToString();
  Result<serve::InferenceEngine> plan_engine = serve::InferenceEngine::Load(
      dir.string());
  EMAF_CHECK(plan_engine.ok()) << plan_engine.status().ToString();
  // The same two paths with f32 residents: cold-loads cast the weights,
  // requests run the f32 kernels and cast window/forecast at the boundary.
  serve::EngineOptions f32_module_options;
  f32_module_options.use_compiled_plans = false;
  f32_module_options.inference_dtype = tensor::DType::kF32;
  Result<serve::InferenceEngine> f32_engine = serve::InferenceEngine::Load(
      dir.string(), f32_module_options);
  EMAF_CHECK(f32_engine.ok()) << f32_engine.status().ToString();
  serve::EngineOptions f32_plan_options;
  f32_plan_options.inference_dtype = tensor::DType::kF32;
  Result<serve::InferenceEngine> f32_plan_engine = serve::InferenceEngine::Load(
      dir.string(), f32_plan_options);
  EMAF_CHECK(f32_plan_engine.ok()) << f32_plan_engine.status().ToString();
  std::vector<std::string> ids = engine.value().individual_ids();
  Rng window_rng(scale.seed + 1);
  tensor::Tensor window = tensor::Tensor::Uniform(
      tensor::Shape{1, seq, person.num_variables()}, -1, 1, &window_rng);

  // Warm up every path once per model so lazy first-request work (arena
  // cold misses, page faults in fresh weights, plan compilation) stays
  // out of the timings. The fused-chain delta around the plan warm-up is
  // the chain count across the five compiled plans.
  uint64_t chains_before =
      obs::Registry::Global().GetCounter("plan.fused_chains")->value();
  for (const std::string& id : ids) {
    core::Predict(engine.value().model(id), window);
    Result<tensor::Tensor> warm = engine.value().Forecast(id, window);
    EMAF_CHECK(warm.ok()) << warm.status().ToString();
    Result<tensor::Tensor> compiled = plan_engine.value().Forecast(id, window);
    EMAF_CHECK(compiled.ok()) << compiled.status().ToString();
  }
  // Counted before the f32 warm-ups so the field keeps meaning "chains in
  // the five f64 plans" (the f32 plans fuse identically anyway).
  uint64_t fused_chains =
      obs::Registry::Global().GetCounter("plan.fused_chains")->value() -
      chains_before;
  double max_abs_error = 0.0;
  for (const std::string& id : ids) {
    Result<tensor::Tensor> f32_warm = f32_engine.value().Forecast(id, window);
    EMAF_CHECK(f32_warm.ok()) << f32_warm.status().ToString();
    Result<tensor::Tensor> f32_compiled =
        f32_plan_engine.value().Forecast(id, window);
    EMAF_CHECK(f32_compiled.ok()) << f32_compiled.status().ToString();
    Result<tensor::Tensor> f64_ref = plan_engine.value().Forecast(id, window);
    EMAF_CHECK(f64_ref.ok()) << f64_ref.status().ToString();
    // Accuracy cost of serving in f32, measured on the wire (both outputs
    // are f64 doubles): the largest per-element divergence from the
    // bit-pinned f64 plan path.
    const double* ref = f64_ref.value().data();
    const double* got = f32_compiled.value().data();
    for (int64_t i = 0; i < f64_ref.value().NumElements(); ++i) {
      max_abs_error = std::max(max_abs_error, std::abs(ref[i] - got[i]));
    }
  }

  PassStats no_arena = TimedPass(ids, requests, [&](const std::string& id) {
    core::Predict(engine.value().model(id), window);
  });
  // Module vs plan and f64 vs f32, interleaved request by request: all
  // four paths see the same machine-noise profile, so their p50 deltas
  // reflect the execution paths rather than whichever pass a background
  // hiccup landed on.
  struct TimedPath {
    serve::InferenceEngine* engine;
    std::vector<double> latencies;
    uint64_t allocs = 0;
  };
  TimedPath paths[4] = {{&engine.value(), {}, 0},
                        {&plan_engine.value(), {}, 0},
                        {&f32_engine.value(), {}, 0},
                        {&f32_plan_engine.value(), {}, 0}};
  for (TimedPath& path : paths) {
    path.latencies.reserve(static_cast<size_t>(requests));
  }
  // Instruction counting brackets only the f64 plan requests — the f32
  // plan path bumps the same process-global counter.
  uint64_t instructions_total = 0;
  for (int64_t r = 0; r < requests; ++r) {
    const std::string& id = ids[static_cast<size_t>(r) % ids.size()];
    for (size_t p = 0; p < 4; ++p) {
      uint64_t allocs = StorageAllocs();
      uint64_t instructions_before =
          p == 1 ? obs::Registry::Global()
                       .GetCounter("plan.instructions_total")
                       ->value()
                 : 0;
      auto start = std::chrono::steady_clock::now();
      Result<tensor::Tensor> out = paths[p].engine->Forecast(id, window);
      paths[p].latencies.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
      EMAF_CHECK(out.ok()) << out.status().ToString();
      paths[p].allocs += StorageAllocs() - allocs;
      if (p == 1) {
        instructions_total += obs::Registry::Global()
                                  .GetCounter("plan.instructions_total")
                                  ->value() -
                              instructions_before;
      }
    }
  }
  double instructions_per_request =
      obs::kMetricsEnabled ? static_cast<double>(instructions_total) /
                                 static_cast<double>(requests)
                           : -1.0;
  auto finish_pass = [&](std::vector<double> latencies, uint64_t allocs) {
    std::sort(latencies.begin(), latencies.end());
    PassStats stats;
    stats.p50_seconds = Quantile(latencies, 0.5);
    stats.p99_seconds = Quantile(latencies, 0.99);
    if (obs::kMetricsEnabled) {
      stats.allocs_per_request =
          static_cast<double>(allocs) / static_cast<double>(requests);
    }
    return stats;
  };
  PassStats arena = finish_pass(std::move(paths[0].latencies), paths[0].allocs);
  PassStats plan = finish_pass(std::move(paths[1].latencies), paths[1].allocs);
  PassStats f32_module =
      finish_pass(std::move(paths[2].latencies), paths[2].allocs);
  PassStats f32_plan =
      finish_pass(std::move(paths[3].latencies), paths[3].allocs);
  double plan_speedup =
      f32_plan.p50_seconds > 0 ? plan.p50_seconds / f32_plan.p50_seconds : 0.0;
  tensor::InferenceArena::Stats arena_stats = engine.value().arena_stats();
  double hit_rate =
      arena_stats.hits + arena_stats.misses == 0
          ? 0.0
          : static_cast<double>(arena_stats.hits) /
                static_cast<double>(arena_stats.hits + arena_stats.misses);

  StoreStats store = RunStoreScenario(requests);

  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::string json = StrCat(
      "{\"bench\": \"inference\", \"wall_seconds\": ", wall_seconds,
      ", \"threads\": ", common::ThreadPool::Global().num_threads(),
      ", \"requests\": ", requests, ", \"families\": ", ids.size(),
      ", \"no_arena\": ", PassJson(no_arena),
      ", \"arena\": ", PassJson(arena),
      ", \"arena_hit_rate\": ", hit_rate,
      ", \"plan\": {\"p50_seconds\": ", plan.p50_seconds,
      ", \"p99_seconds\": ", plan.p99_seconds,
      ", \"allocs_per_request\": ", plan.allocs_per_request,
      ", \"instructions_per_request\": ", instructions_per_request,
      ", \"fused_chains\": ",
      obs::kMetricsEnabled ? static_cast<double>(fused_chains) : -1.0, "}",
      ", \"store\": {\"models_on_disk\": ", store.models_on_disk,
      ", \"max_resident\": ", store.max_resident,
      ", \"requests\": ", store.requests,
      ", \"cold\": {\"p50_seconds\": ", store.cold_p50,
      ", \"p99_seconds\": ", store.cold_p99,
      "}, \"warm\": {\"p50_seconds\": ", store.warm_p50,
      ", \"p99_seconds\": ", store.warm_p99,
      "}, \"hit_rate\": ", store.hit_rate,
      ", \"cold_loads\": ", store.cold_loads,
      ", \"evictions\": ", store.evictions, "}",
      ", \"dtype\": {\"f64\": {\"module\": ", PassJson(arena),
      ", \"plan\": ", PassJson(plan),
      "}, \"f32\": {\"module\": ", PassJson(f32_module),
      ", \"plan\": ", PassJson(f32_plan),
      "}, \"max_abs_error_f32_vs_f64\": ", max_abs_error,
      ", \"plan_p50_speedup_f32_vs_f64\": ", plan_speedup,
      ", \"resident_bytes\": {\"f64\": ",
      engine.value().store().stats().resident_bytes,
      ", \"f32\": ", f32_engine.value().store().stats().resident_bytes,
      "}}}");

  std::cout << "requests per pass: " << requests << " across " << ids.size()
            << " families\n"
            << "no arena: p50 " << no_arena.p50_seconds * 1e6 << "us, p99 "
            << no_arena.p99_seconds * 1e6 << "us, allocs/request "
            << no_arena.allocs_per_request << "\n"
            << "arena:    p50 " << arena.p50_seconds * 1e6 << "us, p99 "
            << arena.p99_seconds * 1e6 << "us, allocs/request "
            << arena.allocs_per_request << " (hit rate "
            << FormatFixed(hit_rate, 4) << ")\n"
            << "plan:     p50 " << plan.p50_seconds * 1e6 << "us, p99 "
            << plan.p99_seconds * 1e6 << "us, allocs/request "
            << plan.allocs_per_request << " ("
            << instructions_per_request << " instructions/request, "
            << fused_chains << " fused chains)\n"
            << "f32 mod:  p50 " << f32_module.p50_seconds * 1e6 << "us, p99 "
            << f32_module.p99_seconds * 1e6 << "us, allocs/request "
            << f32_module.allocs_per_request << "\n"
            << "f32 plan: p50 " << f32_plan.p50_seconds * 1e6 << "us, p99 "
            << f32_plan.p99_seconds * 1e6 << "us, allocs/request "
            << f32_plan.allocs_per_request << " ("
            << FormatFixed(plan_speedup, 2) << "x f64 plan p50, max |err| "
            << max_abs_error << ")\n"
            << "store (" << store.max_resident << " of "
            << store.models_on_disk << " resident): cold p50 "
            << store.cold_p50 * 1e6 << "us, p99 " << store.cold_p99 * 1e6
            << "us; warm p50 " << store.warm_p50 * 1e6 << "us, p99 "
            << store.warm_p99 * 1e6 << "us; hit rate "
            << FormatFixed(store.hit_rate, 4) << ", " << store.cold_loads
            << " cold loads, " << store.evictions << " evictions\n";
  std::cout << "\n[json] " << json << "\n";

  std::string json_dir = GetEnvString("EMAF_BENCH_JSON_DIR", ".");
  if (json_dir != "-") {
    std::string path = json_dir + "/BENCH_inference.json";
    std::ofstream out(path);
    if (out) {
      out << json << "\n";
    } else {
      std::cout << "[json] failed to write " << path << "\n";
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
