// Online-ingestion benchmark (DESIGN.md, "Online ingestion & hot-swap"):
// measures the closed loop from a streamed observation to a hot-swapped
// serving model, and the forecasting value of updating at all.
//
// Three sections, one BENCH_online.json:
//
//   updates — streams a synthetic EMA signal with a mid-stream regime
//     change into the observation log for every individual, runs
//     OnlinePipeline::UpdateIndividual on a fixed cadence, and reports
//     p50/p99 update latency (append -> fine-tune -> publish -> swap).
//     The whole update schedule is replayed at 1, 2 and 8 pool threads
//     (individuals fan out via ParallelFor); every per-individual MSE
//     must come back bitwise identical — `deterministic_across_threads`
//     in the JSON is that check, not an aspiration.
//
//   swap — a live loopback server under pipelined forecast traffic while
//     ModelStore::Publish retargets the tenant: swap latency, how many
//     requests were served while the swap was in flight, and the count of
//     replies that were bitwise neither old nor new (must be 0).
//
//   mse_rows — per individual, one-step-ahead MSE over the stream's tail
//     for the static arm (the initial snapshot, never updated) vs. the
//     windowed arm (the last online-published snapshot) — the
//     windowed-vs-static ablation of the streaming story.
//
// Scale knobs (env):
//   EMAF_BENCH_ONLINE_INDIVIDUALS  stream count            (default 4)
//   EMAF_BENCH_ONLINE_ROWS         rows per individual     (default 120)
//   EMAF_BENCH_ONLINE_UPDATE_EVERY rows between updates    (default 16)
//   EMAF_BENCH_ONLINE_EPOCHS       fine-tune epochs        (default 3)
//   EMAF_BENCH_SEED                model/init seed         (default 42)
//   EMAF_BENCH_JSON_DIR            output dir ("-" = none) (default ".")
//
// `--smoke` shrinks everything, re-reads the emitted JSON to verify the
// schema, and enforces the invariants (determinism across threads, zero
// mixed-version replies, request accounting) — the ctest regression gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "models/registry.h"
#include "online/observation_log.h"
#include "online/pipeline.h"
#include "online/publisher.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace emaf::bench {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 3;
constexpr int64_t kSteps = 2;  // model input_length

struct OnlineScale {
  int64_t individuals = 4;
  int64_t rows = 120;
  int64_t update_every = 16;
  int64_t epochs = 3;
  uint64_t seed = 42;
  bool smoke = false;
};

OnlineScale ReadOnlineScale(bool smoke) {
  OnlineScale scale;
  scale.smoke = smoke;
  if (smoke) {
    scale.individuals = 2;
    scale.rows = 48;
    scale.update_every = 12;
    scale.epochs = 2;
  }
  scale.individuals =
      GetEnvInt64("EMAF_BENCH_ONLINE_INDIVIDUALS", scale.individuals);
  scale.rows = GetEnvInt64("EMAF_BENCH_ONLINE_ROWS", scale.rows);
  scale.update_every =
      GetEnvInt64("EMAF_BENCH_ONLINE_UPDATE_EVERY", scale.update_every);
  scale.epochs = GetEnvInt64("EMAF_BENCH_ONLINE_EPOCHS", scale.epochs);
  scale.seed = static_cast<uint64_t>(GetEnvInt64("EMAF_BENCH_SEED", 42));
  return scale;
}

std::string IndividualId(int64_t index) { return StrCat("i", index); }

// The synthetic stream: a smooth per-individual signal whose coupling
// shifts at mid-stream (the regime change a static model cannot follow).
double Observation(int64_t individual, int64_t t, int64_t v, int64_t rows) {
  const double base =
      std::sin(0.25 * static_cast<double>(t) + static_cast<double>(v) +
               0.37 * static_cast<double>(individual)) +
      0.3 * std::sin(0.05 * static_cast<double>(t));
  const double regime =
      t >= rows / 2 ? 0.4 * static_cast<double>(v + 1) : 0.0;
  return base + regime;
}

std::vector<double> ObservationRow(int64_t individual, int64_t t,
                                   int64_t rows) {
  std::vector<double> row(kVars);
  for (int64_t v = 0; v < kVars; ++v) {
    row[static_cast<size_t>(v)] = Observation(individual, t, v, rows);
  }
  return row;
}

models::ModelConfig BenchConfig() {
  models::ModelConfig config;
  config.family = "LSTM";
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 4;
  return config;
}

// Saves the initial (untrained) snapshot per individual into `dir`.
Status BuildSnapshotDir(const std::string& dir, const OnlineScale& scale) {
  fs::remove_all(dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal(StrCat("mkdir ", dir, ": ", ec.message()));
  for (int64_t i = 0; i < scale.individuals; ++i) {
    models::ModelConfig config = BenchConfig();
    Rng rng(scale.seed + static_cast<uint64_t>(i));
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    EMAF_RETURN_IF_ERROR(models::SaveForecasterSnapshot(
        model.get(), config,
        StrCat(dir, "/", IndividualId(i), ".snapshot")));
  }
  return Status::Ok();
}

// One-step-ahead MSE of `model` over the last quarter of the stream.
double TailMse(models::Forecaster* model, int64_t individual,
               const OnlineScale& scale) {
  const int64_t eval_rows = std::max<int64_t>(4, scale.rows / 4);
  double sum = 0;
  int64_t count = 0;
  for (int64_t t = scale.rows - eval_rows; t < scale.rows; ++t) {
    Tensor window = Tensor::Zeros(Shape{1, kSteps, kVars});
    for (int64_t s = 0; s < kSteps; ++s) {
      for (int64_t v = 0; v < kVars; ++v) {
        window.data()[s * kVars + v] =
            Observation(individual, t - kSteps + s, v, scale.rows);
      }
    }
    const std::vector<double> predicted =
        core::Predict(model, window).ToVector();
    for (int64_t v = 0; v < kVars; ++v) {
      const double err = predicted[static_cast<size_t>(v)] -
                         Observation(individual, t, v, scale.rows);
      sum += err * err;
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

struct RunResult {
  std::vector<double> update_latencies_ms;  // across all individuals
  std::vector<double> windowed_mse;         // per individual
  std::vector<double> static_mse;           // per individual
};

// Replays the full stream + update schedule at `num_threads` pool
// threads: individuals fan out via ParallelFor (grain 1), each with its
// own OnlinePipeline over the shared log/publisher/store.
Result<RunResult> RunOnce(const std::string& root, const OnlineScale& scale,
                          int64_t num_threads) {
  const std::string snapshots = StrCat(root, "/snapshots");
  const std::string logs = StrCat(root, "/obslog");
  EMAF_RETURN_IF_ERROR(BuildSnapshotDir(snapshots, scale));
  fs::remove_all(logs);

  Result<online::ObservationLog> log = online::ObservationLog::Open(logs);
  if (!log.ok()) return log.status();
  Result<online::SnapshotPublisher> publisher =
      online::SnapshotPublisher::Open(snapshots);
  if (!publisher.ok()) return publisher.status();
  Result<serve::ModelStore> store = serve::ModelStore::Open(snapshots);
  if (!store.ok()) return store.status();

  RunResult result;
  result.windowed_mse.assign(static_cast<size_t>(scale.individuals), 0.0);
  result.static_mse.assign(static_cast<size_t>(scale.individuals), 0.0);
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(scale.individuals));
  std::atomic<bool> failed{false};
  std::string first_error;
  std::mutex error_mu;

  common::ThreadPool pool(num_threads);
  pool.ParallelFor(0, scale.individuals, /*grain=*/1, [&](int64_t begin,
                                                          int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const std::string id = IndividualId(i);
      online::OnlinePipelineOptions options;
      options.graph.window_rows = 32;
      options.train.epochs = scale.epochs;
      online::OnlinePipeline pipeline(&log.value(), &publisher.value(),
                                      &store.value(), options);
      for (int64_t t = 0; t < scale.rows; ++t) {
        Result<uint64_t> appended =
            log.value().Append(id, ObservationRow(i, t, scale.rows));
        if (!appended.ok()) {
          std::lock_guard<std::mutex> guard(error_mu);
          if (!failed.exchange(true)) {
            first_error = appended.status().ToString();
          }
          return;
        }
        const int64_t streamed = t + 1;
        if (streamed >= options.graph.min_rows &&
            streamed % scale.update_every == 0) {
          const auto start = std::chrono::steady_clock::now();
          Result<online::UpdateOutcome> outcome =
              pipeline.UpdateIndividual(id);
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (!outcome.ok()) {
            std::lock_guard<std::mutex> guard(error_mu);
            if (!failed.exchange(true)) {
              first_error = outcome.status().ToString();
            }
            return;
          }
          latencies[static_cast<size_t>(i)].push_back(ms);
        }
      }
      // Evaluate both arms on the tail of the stream.
      Rng static_rng(scale.seed + static_cast<uint64_t>(i));
      models::ModelConfig config = BenchConfig();
      std::unique_ptr<models::Forecaster> initial =
          models::CreateForecasterOrDie(config, &static_rng);
      result.static_mse[static_cast<size_t>(i)] =
          TailMse(initial.get(), i, scale);
      Result<std::string> latest = store.value().snapshot_path(id);
      if (!latest.ok()) {
        std::lock_guard<std::mutex> guard(error_mu);
        if (!failed.exchange(true)) first_error = latest.status().ToString();
        return;
      }
      Rng load_rng(1);
      Result<std::unique_ptr<models::Forecaster>> tuned =
          models::LoadForecasterSnapshot(latest.value(), &load_rng);
      if (!tuned.ok()) {
        std::lock_guard<std::mutex> guard(error_mu);
        if (!failed.exchange(true)) first_error = tuned.status().ToString();
        return;
      }
      result.windowed_mse[static_cast<size_t>(i)] =
          TailMse(tuned.value().get(), i, scale);
    }
  });
  if (failed.load()) return Status::Internal(first_error);
  for (const std::vector<double>& per_individual : latencies) {
    result.update_latencies_ms.insert(result.update_latencies_ms.end(),
                                      per_individual.begin(),
                                      per_individual.end());
  }
  return result;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct SwapResult {
  double latency_ms = 0;
  uint64_t requests_during_swap = 0;
  uint64_t old_replies = 0;
  uint64_t new_replies = 0;
  uint64_t mixed_replies = 0;
};

// A live server under pipelined traffic while Publish retargets the
// tenant: how long the swap takes and what traffic saw meanwhile.
Result<SwapResult> RunSwapSection(const std::string& root,
                                  const OnlineScale& scale) {
  const std::string dir = StrCat(root, "/swap");
  OnlineScale one = scale;
  one.individuals = 1;
  EMAF_RETURN_IF_ERROR(BuildSnapshotDir(dir, one));
  // Ground truth for both versions.
  Rng window_rng(scale.seed);
  const Tensor window =
      Tensor::Uniform(Shape{1, kSteps, kVars}, -1, 1, &window_rng);
  Rng old_rng(scale.seed);
  models::ModelConfig config = BenchConfig();
  std::unique_ptr<models::Forecaster> old_model =
      models::CreateForecasterOrDie(config, &old_rng);
  const std::vector<double> old_bytes =
      core::Predict(old_model.get(), window).ToVector();
  Rng new_rng(scale.seed + 1000);
  std::unique_ptr<models::Forecaster> new_model =
      models::CreateForecasterOrDie(config, &new_rng);
  EMAF_RETURN_IF_ERROR(models::SaveForecasterSnapshot(
      new_model.get(), config, StrCat(dir, "/i0.v1.snapshot")));
  const std::vector<double> new_bytes =
      core::Predict(new_model.get(), window).ToVector();

  Result<serve::Server> started = serve::Server::Start(dir);
  if (!started.ok()) return started.status();
  serve::Server server = std::move(started).value();

  SwapResult swap;
  std::atomic<bool> stop{false};
  std::atomic<bool> swapping{false};
  std::atomic<uint64_t> during{0}, old_count{0}, new_count{0}, mixed{0};
  std::atomic<int64_t> warmup_replies{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      Result<serve::Client> connected = serve::Client::Connect(server.port());
      if (!connected.ok()) {
        mixed.fetch_add(1);
        return;
      }
      serve::Client client = std::move(connected).value();
      while (!stop.load(std::memory_order_acquire)) {
        std::set<uint64_t> pending;
        for (int i = 0; i < 4; ++i) {
          Result<uint64_t> id = client.SendForecastRequest("i0", window);
          if (!id.ok()) return;
          pending.insert(id.value());
        }
        while (!pending.empty()) {
          Result<serve::Frame> reply = client.ReadFrame();
          if (!reply.ok()) return;
          if (pending.erase(reply.value().request_id) != 1) {
            mixed.fetch_add(1);
            return;
          }
          Result<Tensor> forecast =
              serve::DecodeTensorPayload(reply.value().payload);
          if (!forecast.ok()) {
            mixed.fetch_add(1);
            return;
          }
          const std::vector<double> bytes = forecast.value().ToVector();
          if (bytes == old_bytes) {
            old_count.fetch_add(1);
          } else if (bytes == new_bytes) {
            new_count.fetch_add(1);
          } else {
            mixed.fetch_add(1);
          }
          if (swapping.load(std::memory_order_acquire)) during.fetch_add(1);
          warmup_replies.fetch_add(1);
        }
      }
    });
  }
  // Let traffic flow, then swap mid-stream.
  const auto warmup_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (warmup_replies.load() < 16 &&
         std::chrono::steady_clock::now() < warmup_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  swapping.store(true, std::memory_order_release);
  const auto swap_start = std::chrono::steady_clock::now();
  Status published = server.store().Publish("i0", dir + "/i0.v1.snapshot");
  swap.latency_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - swap_start)
                        .count();
  swapping.store(false, std::memory_order_release);
  // Keep traffic flowing until post-swap replies landed, then quiesce.
  const int64_t at_swap = warmup_replies.load();
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (warmup_replies.load() < at_swap + 16 &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  server.Stop();
  if (!published.ok()) return published;
  swap.requests_during_swap = during.load();
  swap.old_replies = old_count.load();
  swap.new_replies = new_count.load();
  swap.mixed_replies = mixed.load();
  return swap;
}

std::string ToJson(const OnlineScale& scale, const RunResult& run,
                   const SwapResult& swap, bool deterministic) {
  std::ostringstream out;
  out << "{\"bench\": \"online\", \"individuals\": " << scale.individuals
      << ", \"rows\": " << scale.rows
      << ", \"update_every\": " << scale.update_every
      << ", \"epochs\": " << scale.epochs << ", \"seed\": " << scale.seed
      << ", \"thread_counts\": [1, 2, 8], \"deterministic_across_threads\": "
      << (deterministic ? "true" : "false")
      << ", \"smoke\": " << (scale.smoke ? "true" : "false")
      << ", \"updates\": {\"count\": " << run.update_latencies_ms.size()
      << ", \"p50_ms\": " << Percentile(run.update_latencies_ms, 0.5)
      << ", \"p99_ms\": " << Percentile(run.update_latencies_ms, 0.99)
      << "}, \"swap\": {\"latency_ms\": " << swap.latency_ms
      << ", \"requests_during_swap\": " << swap.requests_during_swap
      << ", \"old_replies\": " << swap.old_replies
      << ", \"new_replies\": " << swap.new_replies
      << ", \"mixed_replies\": " << swap.mixed_replies
      << "}, \"mse_rows\": [";
  for (int64_t i = 0; i < scale.individuals; ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": \"" << IndividualId(i) << "\", \"static_mse\": "
        << FormatExact(run.static_mse[static_cast<size_t>(i)])
        << ", \"windowed_mse\": "
        << FormatExact(run.windowed_mse[static_cast<size_t>(i)]) << "}";
  }
  out << "]}";
  return out.str();
}

bool ValidateSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "[smoke] missing " << path << "\n";
    return false;
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  bool ok = true;
  for (const char* key :
       {"\"bench\"", "\"individuals\"", "\"rows\"", "\"update_every\"",
        "\"epochs\"", "\"thread_counts\"",
        "\"deterministic_across_threads\"", "\"updates\"", "\"count\"",
        "\"p50_ms\"", "\"p99_ms\"", "\"swap\"", "\"latency_ms\"",
        "\"requests_during_swap\"", "\"old_replies\"", "\"new_replies\"",
        "\"mixed_replies\"", "\"mse_rows\"", "\"static_mse\"",
        "\"windowed_mse\""}) {
    if (json.find(key) == std::string::npos) {
      std::cerr << "[smoke] BENCH_online.json is missing " << key << "\n";
      ok = false;
    }
  }
  return ok;
}

int Run(bool smoke) {
  const OnlineScale scale = ReadOnlineScale(smoke);
  const std::string root =
      StrCat(fs::temp_directory_path().string(), "/emaf_bench_online");
  std::cout << "=== online bench ===\n"
            << scale.individuals << " individuals x " << scale.rows
            << " rows, update every " << scale.update_every << " rows, "
            << scale.epochs << " fine-tune epochs"
            << (smoke ? " [smoke]" : "") << "\n";

  // The same schedule at 1/2/8 pool threads; MSEs must match bitwise.
  std::vector<RunResult> runs;
  for (int64_t threads : {int64_t{1}, int64_t{2}, int64_t{8}}) {
    Result<RunResult> run = RunOnce(root, scale, threads);
    if (!run.ok()) {
      std::cerr << "run at " << threads
                << " threads failed: " << run.status().ToString() << "\n";
      return 1;
    }
    runs.push_back(std::move(run).value());
    std::cout << "threads=" << threads << ": "
              << runs.back().update_latencies_ms.size() << " updates, p50="
              << Percentile(runs.back().update_latencies_ms, 0.5)
              << "ms p99="
              << Percentile(runs.back().update_latencies_ms, 0.99) << "ms\n";
  }
  bool deterministic = true;
  for (size_t r = 1; r < runs.size(); ++r) {
    if (runs[r].windowed_mse != runs[0].windowed_mse ||
        runs[r].static_mse != runs[0].static_mse) {
      deterministic = false;
    }
  }
  for (int64_t i = 0; i < scale.individuals; ++i) {
    std::cout << IndividualId(i) << ": static_mse="
              << runs[0].static_mse[static_cast<size_t>(i)]
              << " windowed_mse="
              << runs[0].windowed_mse[static_cast<size_t>(i)] << "\n";
  }
  std::cout << "deterministic_across_threads="
            << (deterministic ? "true" : "false") << "\n";

  Result<SwapResult> swap = RunSwapSection(root, scale);
  if (!swap.ok()) {
    std::cerr << "swap section failed: " << swap.status().ToString() << "\n";
    return 1;
  }
  std::cout << "swap: latency=" << swap.value().latency_ms
            << "ms requests_during_swap="
            << swap.value().requests_during_swap
            << " old=" << swap.value().old_replies
            << " new=" << swap.value().new_replies
            << " mixed=" << swap.value().mixed_replies << "\n";

  fs::remove_all(root);
  const std::string json =
      ToJson(scale, runs[0], swap.value(), deterministic);
  std::cout << "\n[json] " << json << "\n";
  const std::string out_dir = GetEnvString("EMAF_BENCH_JSON_DIR", ".");
  const std::string path = out_dir + "/BENCH_online.json";
  if (out_dir != "-") {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << json << "\n";
  }

  if (smoke) {
    if (out_dir == "-" || !ValidateSchema(path)) return 1;
    if (!deterministic) {
      std::cerr << "[smoke] MSE rows differ across thread counts\n";
      return 1;
    }
    if (swap.value().mixed_replies != 0) {
      std::cerr << "[smoke] a reply was bitwise neither old nor new\n";
      return 1;
    }
    if (runs[0].update_latencies_ms.empty()) {
      std::cerr << "[smoke] no online update ever ran\n";
      return 1;
    }
    if (swap.value().new_replies == 0) {
      std::cerr << "[smoke] no post-swap traffic was served\n";
      return 1;
    }
    std::cout << "[smoke] BENCH_online.json schema OK\n";
  }
  return 0;
}

}  // namespace
}  // namespace emaf::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  return emaf::bench::Run(smoke);
}
