// Fig. 3 — Experiment C: static (distance-based) graphs vs MTGNN-learned
// graphs as input to A3TGCN and ASTGCN, 5-step input, sparse (GDT = 20%)
// graphs. For every configuration the bench prints the boxplot statistics
// of the per-individual MSE distribution (the figure's boxes), the mean
// (the figure's black numbers), and the mean relative % change between the
// static and learned variant (the figure's red numbers). MTGNN's own
// distribution and the learned-vs-static graph correlation (the paper
// reports ~0.88) are included.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/report.h"
#include "ts/stats.h"

namespace emaf {
namespace {

std::vector<std::string> BoxRow(const std::string& label,
                                const std::vector<double>& mses,
                                const std::string& change) {
  ts::BoxStats box = ts::ComputeBoxStats(mses);
  return {label,
          FormatFixed(box.min, 3),
          FormatFixed(box.q1, 3),
          FormatFixed(box.median, 3),
          FormatFixed(box.q3, 3),
          FormatFixed(box.max, 3),
          FormatFixed(box.mean, 3),
          change};
}

void Run() {
  bench::BenchScale scale = bench::ReadScale(/*default_epochs=*/30);
  bench::RunReporter reporter("fig3_learned_graphs", scale);
  bench::PrintScale("Fig. 3: Experiment C — static vs MTGNN-learned graphs",
                    scale);

  core::ExperimentConfig config = bench::MakeConfig(scale);
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(cohort, config);

  const std::vector<graph::GraphMetric> metrics = {
      graph::GraphMetric::kEuclidean, graph::GraphMetric::kDtw,
      graph::GraphMetric::kKnn, graph::GraphMetric::kCorrelation};
  const int64_t seq = 5;
  const double gdt = 0.2;

  core::TablePrinter table({"Config", "min", "q1", "median", "q3", "max",
                            "mean", "rel%chg"});

  for (graph::GraphMetric metric : metrics) {
    // MTGNN trained with this static prior (also produces the learned
    // graphs used below, via the runner's cache).
    core::CellSpec mtgnn;
    mtgnn.model = core::ModelKind::kMtgnn;
    mtgnn.metric = metric;
    mtgnn.gdt = gdt;
    mtgnn.input_length = seq;
    core::CellResult mtgnn_result = runner.RunCellOrDie(mtgnn);
    table.AddRow(
        BoxRow(mtgnn.Label(), mtgnn_result.per_individual_mse, "-"));

    for (core::ModelKind model :
         {core::ModelKind::kA3tgcn, core::ModelKind::kAstgcn}) {
      core::CellSpec spec;
      spec.model = model;
      spec.metric = metric;
      spec.gdt = gdt;
      spec.input_length = seq;
      core::CellResult static_result = runner.RunCellOrDie(spec);
      spec.use_learned_graph = true;
      core::CellResult learned_result = runner.RunCellOrDie(spec);
      double change = core::ExperimentRunner::MeanRelativeChangePercent(
          static_result, learned_result);
      spec.use_learned_graph = false;
      table.AddRow(BoxRow(spec.Label(), static_result.per_individual_mse,
                          "-"));
      table.AddRow(BoxRow(spec.Label() + "_learned",
                          learned_result.per_individual_mse,
                          FormatFixed(change, 1) + "%"));
      std::cerr << "[fig3] " << spec.Label() << " static+learned done\n";
    }

    const core::LearnedGraphSet& learned =
        runner.LearnedGraphsOrDie(metric, gdt, seq);
    std::cout << graph::GraphMetricName(metric)
              << ": learned-vs-static graph correlation = "
              << FormatFixed(learned.mean_static_correlation, 3) << "\n";
  }

  std::cout << "\n";
  table.Print(std::cout);
  bench::MaybeWriteCsv(table, "fig3_learned_graphs");
  std::cout << "\nPaper reference: MTGNN ~0.84 best; feeding the "
               "MTGNN-learned graph to ASTGCN/A3TGCN gives small mean "
               "changes but consistent per-individual improvements for "
               "kNN/CORR (up to -20.3% for ASTGCN_kNN); learned graphs "
               "correlate ~0.88 with the static ones.\n";
}

}  // namespace
}  // namespace emaf

int main() {
  emaf::Run();
  return 0;
}
